"""Hypothesis property: admission shedding preserves exactly-once outcomes.

Shedding refuses work *before* atomic broadcast, and the client resubmits
the same tid after a Busy — so no matter how aggressively the server
sheds, each issued transaction must finish with exactly one outcome
callback, and a committed increment must be applied exactly once (the
final counter value equals the number of commits).  A double-apply on
resubmission, a lost callback on shed, or a shed transaction leaking
into a replica's log would all break these invariants.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checker.agreement import replica_agreement
from repro.checker.serializability import check_serializability
from repro.core.config import SdurConfig
from repro.core.partitioning import PartitionMap
from repro.geo.deployments import lan_deployment
from repro.harness.cluster import build_cluster
from repro.overload.admission import AdmissionConfig
from tests.conftest import update_program

admission_strategy = st.fixed_dictionaries(
    {
        # Tight enough that sheds actually happen under 3 eager clients.
        "rate": st.sampled_from([20.0, 60.0, None]),
        "burst": st.sampled_from([1.0, 4.0]),
        "max_inflight": st.sampled_from([2, 8, 256]),
        "max_queue_depth": st.sampled_from([2, 8, 512]),
        "seed": st.integers(0, 2**16),
        "max_busy_retries": st.sampled_from([2, 8]),
    }
)


class TestSheddingExactlyOnce:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(params=admission_strategy)
    def test_every_txn_one_outcome_and_no_double_apply(self, params):
        config = SdurConfig().with_admission(
            AdmissionConfig(
                rate=params["rate"],
                burst=params["burst"],
                max_inflight=params["max_inflight"],
                max_queue_depth=params["max_queue_depth"],
                retry_after=0.01,
            )
        )
        cluster = build_cluster(
            lan_deployment(1),
            PartitionMap.by_index(1),
            config,
            seed=params["seed"],
            intra_delay=0.001,
            jitter_fraction=0.3,
        )
        cluster.seed({"0/hot": 0})
        clients = [
            cluster.add_client(
                busy_backoff_base=0.02,
                backoff_cap=0.2,
                max_busy_retries=params["max_busy_retries"],
            )
            for _ in range(3)
        ]
        cluster.start()
        recorder = cluster.attach_recorder()
        num_txns = 24
        done = []
        issued = [0]

        def issue(client):
            issued[0] += 1

            def on_done(result):
                done.append(result)
                if issued[0] < num_txns:
                    issue(client)

            client.execute(update_program(["0/hot"]), on_done)

        for client in clients:
            issue(client)
        cluster.world.run_for(90.0)

        # Exactly one outcome per issued transaction — a shed must abort
        # or (after retry) commit, never vanish and never report twice.
        assert len(done) == issued[0]
        assert len({r.tid for r in done}) == len(done)

        # Exactly-once application: the hot counter equals the number of
        # committed increments (a Busy resubmission must not double-apply).
        committed = sum(1 for r in done if r.committed)
        final = cluster.servers["s1"].server.store.read_latest("0/hot").value or 0
        assert final == committed, f"{committed} commits but value {final}"

        # Shed transactions never enter any replica's log, so replicas
        # still agree and the committed history stays serializable.
        for result in done:
            recorder.record_result(result)
        replica_agreement(recorder, cluster.replica_counts()).raise_if_failed()
        check_serializability(recorder).raise_if_failed()

        # The run must actually exercise admission (sheds or admits > 0).
        stats = cluster.server_stats()
        assert any(s["admitted"] > 0 for s in stats.values())
