"""Hypothesis-driven end-to-end invariants of the whole system.

Each example generates a random configuration (partitions, reorder
threshold, delaying, bloom digests, jitter, conflict intensity) and a
random concurrent workload, runs it through the full simulated stack,
and asserts the two non-negotiable invariants:

1. **Serializability** — the multiversion serialization graph of the
   committed history is acyclic (paper §II-B);
2. **Replica determinism** — every replica of a partition commits the
   same transactions at the same versions (paper §IV-G).

Shrinking over this space has already caught two real protocol races
(see DESIGN.md, "Protocol corrections").
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checker.agreement import replica_agreement
from repro.checker.serializability import check_serializability
from repro.core.config import DelayMode, SdurConfig
from repro.core.partitioning import PartitionMap
from repro.geo.deployments import lan_deployment, wan1_deployment
from repro.harness.cluster import build_cluster
from tests.conftest import update_program

config_strategy = st.fixed_dictionaries(
    {
        "num_partitions": st.integers(2, 3),
        "reorder_threshold": st.sampled_from([0, 4, 12]),
        "delay_fixed": st.sampled_from([0.0, 0.01]),
        "bloom": st.booleans(),
        "wan": st.booleans(),
        "keyspace": st.integers(3, 10),
        "global_p": st.floats(0.0, 0.6),
        "seed": st.integers(0, 2**16),
    }
)


def run_system(params, num_txns=30, termination=None):
    num_partitions = 2 if params["wan"] else params["num_partitions"]
    config = SdurConfig(
        reorder_threshold=params["reorder_threshold"],
        delay_mode=DelayMode.FIXED if params["delay_fixed"] else DelayMode.OFF,
        delay_fixed=params["delay_fixed"],
    )
    if termination is not None:
        config = config.with_termination(termination)
    if params["wan"]:
        cluster = build_cluster(
            wan1_deployment(2),
            PartitionMap.by_index(2),
            config,
            seed=params["seed"],
            jitter_fraction=0.15,
        )
    else:
        cluster = build_cluster(
            lan_deployment(num_partitions),
            PartitionMap.by_index(num_partitions),
            config,
            seed=params["seed"],
            intra_delay=0.001,
            jitter_fraction=0.3,
        )
    clients = [
        cluster.add_client(bloom_readsets=params["bloom"], bloom_fp_rate=0.01)
        for _ in range(3)
    ]
    cluster.start()
    recorder = cluster.attach_recorder()
    cluster.world.run_for(0.5)
    rng = cluster.world.rng.stream("prop-workload")
    done = []
    issued = [0]

    def issue(client):
        issued[0] += 1
        if num_partitions > 1 and rng.random() < params["global_p"]:
            pa, pb = rng.sample(range(num_partitions), 2)
            keys = [
                f"{pa}/k{rng.randrange(params['keyspace'])}",
                f"{pb}/k{rng.randrange(params['keyspace'])}",
            ]
        else:
            home = rng.randrange(num_partitions)
            keys = sorted(
                {
                    f"{home}/k{rng.randrange(params['keyspace'])}",
                    f"{home}/k{rng.randrange(params['keyspace'])}",
                }
            )

        def on_done(result):
            done.append(result)
            if issued[0] < num_txns:
                issue(client)

        client.execute(update_program(keys), on_done)

    for client in clients:
        issue(client)
    cluster.world.run_for(120.0)
    for result in done:
        recorder.record_result(result)
    return cluster, recorder, done


class TestSystemInvariants:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(params=config_strategy)
    def test_serializable_and_deterministic(self, params):
        cluster, recorder, done = run_system(params)
        assert len(done) >= 30, "workload did not complete"
        check_serializability(recorder).raise_if_failed()
        replica_agreement(recorder, cluster.replica_counts()).raise_if_failed()

    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16))
    def test_high_contention_single_key_never_loses_updates(self, seed):
        """All commits on one hot counter must be serial increments: the
        final value equals the number of committed increments."""
        cluster = build_cluster(
            lan_deployment(2),
            PartitionMap.by_index(2),
            SdurConfig(reorder_threshold=4),
            seed=seed,
            intra_delay=0.001,
            jitter_fraction=0.3,
        )
        cluster.seed({"0/hot": 0, "1/side": 0})
        clients = [cluster.add_client() for _ in range(3)]
        cluster.start()
        cluster.world.run_for(0.5)
        done = []
        issued = [0]

        def issue(client):
            issued[0] += 1

            def on_done(result):
                done.append(result)
                if issued[0] < 20:
                    issue(client)

            client.execute(update_program(["0/hot", "1/side"]), on_done)

        for client in clients:
            issue(client)
        cluster.world.run_for(60.0)
        committed = sum(1 for r in done if r.committed)
        final = cluster.servers["s1"].server.store.read_latest("0/hot").value or 0
        assert final == committed, f"lost updates: {committed} commits, value {final}"
