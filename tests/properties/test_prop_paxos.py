"""Paxos safety under chaos: crashes, loss, and leader churn.

The two properties that may never break, whatever the schedule:

* **Agreement** — no two replicas deliver different values at the same
  instance (equivalently: delivered sequences are prefixes of one
  another).
* **Integrity** — only proposed values are delivered, each at most once
  per replica.

Liveness is NOT asserted when a majority is crashed (Paxos cannot and
must not make progress then).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus.replica import PaxosConfig, PaxosReplica
from repro.runtime.sim import SimWorld

MEMBERS = ["a", "b", "c"]

chaos_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "loss": st.sampled_from([0.0, 0.05, 0.15]),
        "crash_member": st.sampled_from([None, "a", "b"]),
        "crash_after": st.floats(0.5, 3.0),
        "num_values": st.integers(1, 15),
        "static_leader": st.booleans(),
    }
)


def run_chaos(params):
    world = SimWorld(seed=params["seed"], loss_probability=params["loss"])
    delivered = {member: [] for member in MEMBERS}
    replicas = {}
    for member in MEMBERS:
        runtime = world.runtime_for(member)
        config = PaxosConfig(
            static_leader="a" if params["static_leader"] else None,
            heartbeat_interval=0.05,
            suspect_timeout=0.25,
            phase1_retry=0.3,
            accept_retry=0.3,
            propose_retry=0.3,
            catchup_interval=0.3,
        )
        replica = PaxosReplica(
            runtime,
            "g",
            MEMBERS,
            config,
            on_deliver=lambda i, v, m=member: delivered[m].append((i, v)),
        )
        runtime.listen(lambda src, msg, r=replica: r.handle(src, msg))
        replicas[member] = replica
    for replica in replicas.values():
        replica.start()
    world.run(until=0.5)
    proposed = []
    rng = world.rng.stream("chaos")
    for index in range(params["num_values"]):
        value = f"value-{index}"
        proposed.append(value)
        proposer = MEMBERS[rng.randrange(3)]
        replicas[proposer].propose(value)
        world.run(until=world.now + rng.random() * 0.2)
    if params["crash_member"] is not None:
        world.crash(params["crash_member"])
    world.run(until=world.now + 15.0)
    return delivered, proposed, params


class TestPaxosSafety:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(params=chaos_strategy)
    def test_agreement_and_integrity(self, params):
        delivered, proposed, params = run_chaos(params)
        sequences = list(delivered.values())
        # Agreement: pairwise prefix consistency on (instance, value).
        for seq_a in sequences:
            for seq_b in sequences:
                shared = min(len(seq_a), len(seq_b))
                assert seq_a[:shared] == seq_b[:shared], (
                    f"divergent delivery under {params}: {seq_a} vs {seq_b}"
                )
        # Integrity: delivered values were proposed; no duplicates.
        for seq in sequences:
            values = [value for _, value in seq]
            assert len(set(values)) == len(values), f"duplicate delivery: {values}"
            assert set(values) <= set(proposed)
            instances = [instance for instance, _ in seq]
            assert instances == sorted(instances)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16))
    def test_liveness_on_reliable_links(self, seed):
        """On quasi-reliable links (the paper's model) everything
        proposed is delivered everywhere.  Order across *different*
        proposers is whatever the leader saw (a forwarded proposal takes
        one extra hop), but all members agree on it exactly."""
        params = {
            "seed": seed,
            "loss": 0.0,
            "crash_member": None,
            "crash_after": 1.0,
            "num_values": 6,
            "static_leader": True,
        }
        delivered, proposed, _ = run_chaos(params)
        reference = [value for _, value in delivered["a"]]
        assert sorted(reference) == sorted(proposed)
        for member in MEMBERS:
            assert [value for _, value in delivered[member]] == reference

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16))
    def test_lossy_links_lose_only_unforwardable_proposals(self, seed):
        """Under loss, leader-side retries recover everything the leader
        itself accepted; forwarded proposals are at-most-once (the
        documented contract — SDUR's client retries above this layer)."""
        world = SimWorld(seed=seed, loss_probability=0.15)
        delivered = {member: [] for member in MEMBERS}
        replicas = {}
        for member in MEMBERS:
            runtime = world.runtime_for(member)
            config = PaxosConfig(
                static_leader="a", phase1_retry=0.3, accept_retry=0.3,
                catchup_interval=0.3,
            )
            replica = PaxosReplica(
                runtime, "g", MEMBERS, config,
                on_deliver=lambda i, v, m=member: delivered[m].append(v),
            )
            runtime.listen(lambda src, msg, r=replica: r.handle(src, msg))
            replicas[member] = replica
        for replica in replicas.values():
            replica.start()
        world.run(until=1.0)
        for index in range(8):
            replicas["a"].propose(f"v{index}")  # proposed AT the leader
        world.run(until=20.0)
        assert delivered["a"] == [f"v{index}" for index in range(8)]
        assert delivered["b"] == delivered["a"] == delivered["c"]
