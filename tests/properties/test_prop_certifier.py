"""Property tests for certification against a brute-force oracle.

``find_reorder_position`` is the heart of the reordering extension; here
hypothesis generates random pending lists and transactions, and the
result is compared against an exhaustive oracle that checks the paper's
four conditions at every slot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certifier import (
    CertificationWindow,
    CommittedRecord,
    ctest,
    find_reorder_position,
    outcome_conflicts,
)
from repro.core.pending import PendingList, PendingTxn
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection

KEYS = ["a", "b", "c", "d", "e"]

key_sets = st.sets(st.sampled_from(KEYS), max_size=3)


def make_proj(seq, reads, writes, is_global):
    partitions = ("p0", "p1") if is_global else ("p0",)
    return TxnProjection(
        tid=TxnId("c", seq),
        partition="p0",
        readset=ReadsetDigest.exact(reads),
        writeset={key: seq for key in writes},
        snapshot=0,
        partitions=partitions,
        coordinator="s",
        client="c",
    )


pending_entry = st.builds(
    lambda seq, reads, extra_writes, is_global, rt: PendingTxn(
        proj=make_proj(seq, set(reads) | set(extra_writes), extra_writes, is_global),
        rt=rt,
        delivered_at=0.0,
    ),
    seq=st.integers(0, 10_000),
    reads=key_sets,
    extra_writes=key_sets,
    is_global=st.booleans(),
    rt=st.integers(0, 30),
)


def oracle_positions(txn, entries, dc):
    """All slots satisfying the paper's conditions (brute force)."""
    valid = []
    for position in range(len(entries) + 1):
        ok = True
        for k, entry in enumerate(entries):
            if k < position:
                # (a) reads must not be stale w.r.t. earlier entries.
                if txn.readset.contains_any(entry.proj.ws_keys):
                    ok = False
                    break
            else:
                # (b) only globals may be leaped,
                # (c) none past their reorder threshold,
                # (d) no vote invalidation in either direction.
                if not entry.proj.is_global:
                    ok = False
                    break
                if entry.rt < dc:
                    ok = False
                    break
                if txn.readset.contains_any(entry.proj.ws_keys):
                    ok = False
                    break
                if entry.proj.readset.contains_any(txn.writeset.keys()):
                    ok = False
                    break
        if ok:
            valid.append(position)
    return valid


class TestReorderPositionOracle:
    @settings(max_examples=300, deadline=None)
    @given(
        entries=st.lists(pending_entry, max_size=5),
        reads=key_sets,
        writes=key_sets,
        dc=st.integers(0, 30),
    )
    def test_matches_bruteforce_oracle(self, entries, reads, writes, dc):
        # Deduplicate tids (PendingList requires it).
        pending = PendingList()
        seen = set()
        unique = []
        for entry in entries:
            if entry.tid not in seen:
                seen.add(entry.tid)
                pending.append(entry)
                unique.append(entry)
        txn = make_proj(99_999, set(reads) | set(writes), writes, is_global=False)
        result = find_reorder_position(txn, pending, dc)
        valid = oracle_positions(txn, unique, dc)
        if valid:
            assert result == min(valid), (
                f"expected leftmost valid {min(valid)}, got {result}"
            )
        else:
            assert result is None

    @settings(max_examples=100, deadline=None)
    @given(entries=st.lists(pending_entry, max_size=5), reads=key_sets, writes=key_sets)
    def test_empty_conflicts_guarantee_a_slot(self, entries, reads, writes):
        """When outcome_conflicts is empty, the local must find a slot
        (the server relies on this: non-deferred locals never abort at
        the reorder step)."""
        pending = PendingList()
        seen = set()
        for entry in entries:
            if entry.tid not in seen:
                seen.add(entry.tid)
                pending.append(entry)
        txn = make_proj(99_999, set(reads) | set(writes), writes, is_global=False)
        if not outcome_conflicts(txn, pending):
            assert find_reorder_position(txn, pending, delivered_count=0) is not None


class TestCtestProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        rs1=key_sets, ws1=key_sets, rs2=key_sets, ws2=key_sets
    )
    def test_global_ctest_is_symmetric(self, rs1, ws1, rs2, ws2):
        """If two globals pass the symmetric test against each other they
        commute — the property §III-B relies on."""
        t1 = make_proj(1, set(rs1) | set(ws1), ws1, is_global=True)
        t2 = make_proj(2, set(rs2) | set(ws2), ws2, is_global=True)
        forward = ctest(t1, t2.readset, t2.ws_keys)
        backward = ctest(t2, t1.readset, t1.ws_keys)
        if forward and backward:
            # No conflicts in any direction: all four intersections empty.
            assert not (set(t1.writeset) & (set(rs2) | set(ws2)))
            assert not (set(t2.writeset) & (set(rs1) | set(ws1)))

    @settings(max_examples=200, deadline=None)
    @given(
        history=st.lists(st.tuples(key_sets, key_sets), max_size=6),
        reads=key_sets,
        writes=key_sets,
        snapshot=st.integers(0, 6),
    )
    def test_window_certify_equals_per_record_ctest(
        self, history, reads, writes, snapshot
    ):
        window = CertificationWindow(capacity=100)
        records = []
        for version, (record_reads, record_writes) in enumerate(history, start=1):
            record = CommittedRecord(
                tid=TxnId("h", version),
                version=version,
                readset=ReadsetDigest.exact(record_reads),
                ws_keys=frozenset(record_writes),
                is_global=False,
            )
            window.add(record)
            records.append(record)
        txn = make_proj(50_000, set(reads) | set(writes), writes, is_global=True)
        txn = TxnProjection(
            tid=txn.tid, partition="p0", readset=txn.readset, writeset=txn.writeset,
            snapshot=snapshot, partitions=txn.partitions, coordinator="s", client="c",
        )
        expected = all(
            ctest(txn, record.readset, record.ws_keys)
            for record in records
            if record.version > snapshot
        )
        assert window.certify(txn) is expected
