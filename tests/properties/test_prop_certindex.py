"""Differential property tests: indexed vs scan certification.

Hypothesis drives a random delivery history — commits with exact *and*
bloom readset digests, pending-list churn (append, reorder insert,
pop, remove), and a mid-history checkpoint roundtrip — through an
:class:`IndexedCertifier` and a :class:`ScanCertifier` fed identically,
and asserts every query answers *bit-identically*: ``certify``,
``outcome_conflicts``, ``certify_against_pending``, and
``find_reorder_position``.  Certification decides commit order at every
replica, so one divergent verdict is a replica-divergence bug; this
suite is the evidence behind the "identical outcomes" claim of
docs/PROTOCOL.md §15 (ablation A7 shows the same at the system level).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certifier import CertificationWindow, CommittedRecord
from repro.core.certindex import IndexedCertifier, ScanCertifier
from repro.core.checkpoint import window_from_wire, window_to_wire
from repro.core.pending import PendingList, PendingTxn
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection

KEYS = ["a", "b", "c", "d", "e", "f"]

key_sets = st.sets(st.sampled_from(KEYS), max_size=3)

WINDOW_CAPACITY = 6  # small enough that random histories evict


def make_proj(seq, reads, writes, is_global, snapshot=0, bloom=False):
    readset = (
        ReadsetDigest.bloomed(reads) if bloom else ReadsetDigest.exact(reads)
    )
    return TxnProjection(
        tid=TxnId("c", seq),
        partition="p0",
        readset=readset,
        writeset={key: seq for key in writes},
        snapshot=snapshot,
        partitions=("p0", "p1") if is_global else ("p0",),
        coordinator="s",
        client="c",
    )


commit_op = st.tuples(
    st.just("commit"), key_sets, key_sets, st.booleans(), st.booleans()
)
append_op = st.tuples(
    st.just("append"), key_sets, key_sets, st.booleans(), st.booleans(),
    st.integers(0, 12),
)
insert_op = st.tuples(
    st.just("insert"), key_sets, key_sets, st.booleans(), st.integers(0, 100),
)
pop_op = st.tuples(st.just("pop"))
remove_op = st.tuples(st.just("remove"), st.integers(0, 100))
checkpoint_op = st.tuples(st.just("checkpoint"))
query_op = st.tuples(
    st.just("query"), key_sets, key_sets, st.booleans(), st.booleans(),
    st.integers(0, 40), st.integers(0, 12),
)

ops = st.lists(
    st.one_of(commit_op, append_op, insert_op, pop_op, remove_op,
              checkpoint_op, query_op),
    min_size=1,
    max_size=40,
)


class Harness:
    """One certifier (index or scan) plus its window and pending list."""

    def __init__(self, make):
        self.window = CertificationWindow(WINDOW_CAPACITY)
        self.pending = PendingList()
        self.make = make
        self.certifier = make(self.window, self.pending)

    def checkpoint_roundtrip(self):
        self.window = window_from_wire(
            window_to_wire(self.window), WINDOW_CAPACITY, self.window.floor
        )
        self.certifier = self.make(self.window, self.pending)


class TestDifferential:
    @settings(max_examples=200, deadline=None)
    @given(ops=ops)
    def test_indexed_and_scan_agree_on_everything(self, ops):
        sides = [Harness(IndexedCertifier), Harness(ScanCertifier)]
        version = 0
        seq = 0
        for op in ops:
            kind = op[0]
            if kind == "commit":
                _, reads, writes, is_global, bloom = op
                version += 1
                seq += 1
                readset = (
                    ReadsetDigest.bloomed(reads)
                    if bloom
                    else ReadsetDigest.exact(reads)
                )
                for side in sides:
                    side.window.add(
                        CommittedRecord(
                            tid=TxnId("h", seq),
                            version=version,
                            readset=readset,
                            ws_keys=frozenset(writes),
                            is_global=is_global,
                        )
                    )
            elif kind == "append":
                _, reads, writes, is_global, bloom, rt = op
                seq += 1
                proj = make_proj(seq, reads, writes, is_global, bloom=bloom)
                for side in sides:
                    side.pending.append(
                        PendingTxn(proj=proj, rt=rt, delivered_at=0.0)
                    )
            elif kind == "insert":
                _, reads, writes, bloom, raw_pos = op
                seq += 1
                proj = make_proj(seq, reads, writes, False, bloom=bloom)
                position = raw_pos % (len(sides[0].pending) + 1)
                for side in sides:
                    side.pending.insert(
                        position, PendingTxn(proj=proj, rt=0, delivered_at=0.0)
                    )
            elif kind == "pop":
                if len(sides[0].pending):
                    popped = [side.pending.pop_head().tid for side in sides]
                    assert popped[0] == popped[1]
            elif kind == "remove":
                if len(sides[0].pending):
                    pick = op[1] % len(sides[0].pending)
                    tid = list(sides[0].pending)[pick].tid
                    for side in sides:
                        side.pending.remove(tid)
            elif kind == "checkpoint":
                for side in sides:
                    side.checkpoint_roundtrip()
            else:  # query
                _, reads, writes, is_global, bloom, raw_snapshot, dc = op
                snapshot = raw_snapshot % (version + 1)
                txn = make_proj(
                    77_777, reads, writes, is_global,
                    snapshot=snapshot, bloom=bloom,
                )
                indexed, scan = (side.certifier for side in sides)
                assert indexed.certify(txn) is scan.certify(txn)
                assert indexed.outcome_conflicts(txn) == scan.outcome_conflicts(txn)
                assert indexed.certify_against_pending(
                    txn
                ) is scan.certify_against_pending(txn)
                local = make_proj(
                    88_888, reads, writes, False,
                    snapshot=snapshot, bloom=False,
                )
                assert indexed.find_reorder_position(
                    local, dc
                ) == scan.find_reorder_position(local, dc)
        # Final sweep: after all the churn, every key-probe still agrees.
        for key in KEYS:
            for snapshot in (0, version // 2, version):
                txn = make_proj(
                    99_999, {key}, {key}, True, snapshot=snapshot
                )
                indexed, scan = (side.certifier for side in sides)
                assert indexed.certify(txn) is scan.certify(txn)
