"""Recorder semantics: capture, duck-typed tid extraction, global default."""

from dataclasses import dataclass

from repro.core.config import SdurConfig
from repro.obs.recorder import (
    NULL_RECORDER,
    SpanRecorder,
    default_tracing,
    drain_recorders,
    set_default_tracing,
    traced_tid,
)
from repro.obs.spans import build_traces
from repro.runtime.sim import SimWorld
from tests.conftest import make_cluster, run_txn, update_program


class TestSpanRecorder:
    def test_records_clock_sequence_and_attrs(self):
        now = [0.0]
        recorder = SpanRecorder(clock=lambda: now[0])
        recorder.event("client.start", "c1", "t1", label="x")
        now[0] = 2.5
        recorder.event("client.done", "c1", "t1", outcome="commit")
        assert len(recorder) == 2
        first, second = recorder.events
        assert (first.time, first.kind, first.node, first.tid) == (
            0.0,
            "client.start",
            "c1",
            "t1",
        )
        assert first.attrs == {"label": "x"}
        assert second.time == 2.5
        assert second.seq > first.seq

    def test_null_recorder_is_disabled_and_inert(self):
        assert not NULL_RECORDER.enabled
        NULL_RECORDER.event("anything", "n", "t", foo=1)  # no-op, no error
        NULL_RECORDER.bind_clock(lambda: 1.0)


class TestTracedTid:
    def test_direct_tid(self):
        @dataclass
        class Msg:
            tid: str

        assert traced_tid(Msg(tid="t9")) == "t9"

    def test_wrapped_value_tid(self):
        @dataclass
        class Inner:
            tid: str

        @dataclass
        class Wrapper:
            value: Inner

        assert traced_tid(Wrapper(value=Inner(tid="t3"))) == "t3"

    def test_untraced_message(self):
        assert traced_tid(object()) is None


class TestDefaultTracing:
    def test_worlds_pick_up_the_global_default(self):
        assert not default_tracing()
        set_default_tracing(True)
        try:
            world = SimWorld(seed=1)
            assert world.obs.enabled
            assert world.obs in drain_recorders()
        finally:
            set_default_tracing(False)
        assert not SimWorld(seed=1).obs.enabled

    def test_explicit_recorder_wins_over_default(self):
        recorder = SpanRecorder()
        world = SimWorld(seed=1, obs=recorder)
        assert world.obs is recorder


class TestConfigFlag:
    def test_cluster_tracing_flag_wires_a_recorder(self):
        cluster = make_cluster(2, config=SdurConfig(tracing=True))
        assert cluster.obs.enabled
        client = cluster.add_client()
        cluster.start()
        cluster.world.run_for(0.5)
        result = run_txn(cluster, client, update_program(["0/a", "1/b"]))
        assert result.committed
        traces = build_traces(cluster.obs.events)
        assert result.tid in traces
        kinds = {event.kind for event in traces[result.tid].events}
        assert {
            "client.start",
            "client.commit",
            "server.submit",
            "server.deliver",
            "server.certify",
            "server.complete",
            "server.notify",
            "client.done",
        } <= kinds

    def test_tracing_off_by_default(self):
        cluster = make_cluster(1)
        assert not cluster.obs.enabled
