"""Shared helper: one traced transaction on a uniform-δ/Δ WAN 1 cluster.

The same setup as ``tests/integration/test_latency_model.py`` — single
unloaded client, uniform one-way delays, zero CPU costs — but with a
:class:`SpanRecorder` installed, so the resulting trace's hop arithmetic
is exactly Figure 1's.
"""

from __future__ import annotations

from repro.consensus.replica import PaxosConfig
from repro.core.client import TxnResult
from repro.core.config import SdurConfig, TerminationMode
from repro.core.partitioning import PartitionMap
from repro.geo.deployments import wan1_deployment
from repro.harness.cluster import SdurCluster
from repro.net.topology import RegionLatencyModel
from repro.obs.recorder import SpanRecorder
from repro.obs.spans import TxnTrace, build_traces
from repro.runtime.sim import SimWorld
from tests.conftest import read_program, run_txn, update_program

DELTA = 0.005
INTER = 0.060


def traced_commit(
    is_global: bool,
    termination: TerminationMode = TerminationMode.OPTIMISTIC,
    read_only: bool = False,
) -> tuple[TxnResult, TxnTrace, SimWorld]:
    """Run one traced transaction; returns (result, its trace, the world)."""
    deployment = wan1_deployment(2)
    world = SimWorld(
        topology=deployment.topology,
        latency=RegionLatencyModel.uniform(deployment.topology, DELTA, INTER),
        seed=13,
        obs=SpanRecorder(),
    )
    cluster = SdurCluster(
        world,
        deployment,
        PartitionMap.by_index(2),
        SdurConfig(termination_mode=termination),
    )
    for partition in deployment.partition_ids:
        for node in deployment.directory.servers_of(partition):
            cluster._add_server(
                node,
                partition,
                PaxosConfig(
                    static_leader=deployment.directory.preferred_of(partition)
                ),
            )
    client = cluster.add_client(region=deployment.preferred_region["p0"])
    cluster.start()
    world.run_for(1.0)
    keys = ["0/a", "1/b"] if is_global else ["0/a", "0/b"]
    program = read_program(keys) if read_only else update_program(keys)
    result = run_txn(cluster, client, program, read_only=read_only)
    traces = build_traces(world.obs.events)
    return result, traces[result.tid], world
