"""Chrome trace export: valid JSON, monotonic timestamps, well-formed nesting."""

import json

import pytest

from repro.core.config import TerminationMode
from repro.obs.chrome import chrome_trace_events, chrome_trace_json, write_chrome_trace
from repro.obs.spans import build_traces
from repro.obs.timeline import render_timeline
from tests.obs.conftest import traced_commit


@pytest.fixture(scope="module")
def ledger_world():
    """One traced global commit in ledger mode (the richest event set)."""
    result, trace, world = traced_commit(
        is_global=True, termination=TerminationMode.LEDGER
    )
    return result, trace, world


@pytest.fixture(scope="module")
def traces(ledger_world):
    _, _, world = ledger_world
    return build_traces(world.obs.events)


class TestChromeExport:
    def test_round_trips_through_json(self, traces):
        doc = json.loads(chrome_trace_json(traces))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_timestamps_monotonic(self, traces):
        events = chrome_trace_events(traces)
        body = [e for e in events if e["ph"] != "M"]
        assert all(a["ts"] <= b["ts"] for a, b in zip(body, body[1:]))

    def test_metadata_names_every_node(self, traces):
        events = chrome_trace_events(traces)
        named = {e["args"]["name"] for e in events if e["ph"] == "M"}
        touched = {
            event.node for trace in traces.values() for event in trace.events
        }
        assert touched <= named

    def test_instant_milestones_exported(self, traces):
        events = chrome_trace_events(traces)
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert {"client.commit", "client.done", "server.certify"} <= instants

    def test_parent_child_nesting(self, ledger_world):
        _, trace, _ = ledger_world
        root = trace.root
        for span in trace.spans[1:]:
            assert span.parent is not None
            assert span.parent.encloses(span)
            # Walking up always terminates at the root (no cycles).
            seen, cursor = 0, span
            while cursor.parent is not None:
                cursor = cursor.parent
                seen += 1
                assert seen <= len(trace.spans)
            assert cursor is root

    def test_span_lanes_cover_protocol_structure(self, ledger_world):
        _, trace, _ = ledger_world
        names = {span.name for span in trace.spans}
        assert {"txn", "execute", "commit"} <= names
        assert any(name.startswith("abcast:") for name in names)
        assert any(name.startswith("vote:") for name in names)
        assert any(name.startswith("ledger:") for name in names)
        assert any(name.startswith("hop:") for name in names)

    def test_write_chrome_trace_to_path(self, traces, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(str(path), traces)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTimeline:
    def test_renders_span_ladder(self, ledger_world):
        _, trace, _ = ledger_world
        rendered = render_timeline(trace)
        lines = rendered.splitlines()
        assert lines[0].startswith(f"txn {trace.tid}")
        assert len(lines) == len(trace.spans) + 1
        assert any("commit @" in line for line in lines)
        assert all("|" in line for line in lines[1:])
