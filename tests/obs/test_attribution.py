"""Latency attribution reproduces Figure 1's hop arithmetic term-by-term."""

import pytest

from repro.core.config import TerminationMode
from repro.obs.attribution import attribute, hops_str, match_hops, summarize
from tests.obs.conftest import DELTA, INTER, traced_commit


class TestMatchHops:
    def test_exact_pure_delta(self):
        assert match_hops(4 * DELTA, DELTA, INTER) == (4, 0)

    def test_exact_mixed(self):
        assert match_hops(4 * DELTA + 2 * INTER, DELTA, INTER) == (4, 2)

    def test_within_tolerance(self):
        assert match_hops(2 * DELTA + 0.001, DELTA, INTER) == (2, 0)

    def test_unmatchable_returns_none(self):
        # 2.5 ms sits between 0 and δ=5 ms, outside the 1.5 ms tolerance.
        assert match_hops(0.0025, DELTA, INTER) is None

    def test_zero(self):
        assert match_hops(0.0, DELTA, INTER) == (0, 0)

    def test_hops_str(self):
        assert hops_str(4, 2) == "4δ+2Δ"
        assert hops_str(1, 0) == "δ"
        assert hops_str(0, 1) == "Δ"
        assert hops_str(0, 0) == "0"


class TestFigure1Attribution:
    """The acceptance cases: exact decompositions on WAN 1."""

    def test_wan1_local_is_exactly_4_delta(self):
        result, trace, _ = traced_commit(is_global=False)
        assert result.committed
        a = attribute(trace, DELTA, INTER)
        assert a is not None and a.matched
        assert a.formula() == "4δ"
        assert a.measured == pytest.approx(4 * DELTA, abs=1e-3)
        assert [t.name for t in a.terms] == ["request", "order", "notify"]

    def test_wan1_global_optimistic_is_exactly_4_delta_2_inter(self):
        result, trace, _ = traced_commit(is_global=True)
        assert result.committed
        a = attribute(trace, DELTA, INTER)
        assert a is not None and a.matched
        assert a.formula() == "4δ+2Δ"
        assert a.measured == pytest.approx(4 * DELTA + 2 * INTER, abs=1e-3)
        assert [t.name for t in a.terms] == ["request", "order", "vote", "notify"]
        assert a.breakdown() == "request δ + order 2δ+Δ + vote Δ + notify δ"

    def test_wan1_global_ledger_adds_ledger_and_resequence_terms(self):
        result, trace, _ = traced_commit(
            is_global=True, termination=TerminationMode.LEDGER
        )
        assert result.committed
        a = attribute(trace, DELTA, INTER)
        assert a is not None and a.matched
        assert a.formula() == "8δ+2Δ"  # +4δ vote tax over the optimistic 4δ+2Δ
        names = [t.name for t in a.terms]
        assert "ledger" in names and "resequence" in names

    @pytest.mark.parametrize(
        "is_global,termination",
        [
            (False, TerminationMode.OPTIMISTIC),
            (True, TerminationMode.OPTIMISTIC),
            (False, TerminationMode.LEDGER),
            (True, TerminationMode.LEDGER),
        ],
    )
    def test_terms_sum_to_measured_within_one_percent(self, is_global, termination):
        _, trace, _ = traced_commit(is_global=is_global, termination=termination)
        a = attribute(trace, DELTA, INTER)
        assert a is not None
        # Telescoping makes this exact, not just within the 1 % slack.
        assert abs(a.residual) <= max(0.01 * a.measured, 1e-9)
        assert abs(a.residual) < 1e-9

    def test_read_only_transactions_are_not_attributed(self):
        result, trace, _ = traced_commit(is_global=False, read_only=True)
        assert result.committed
        assert attribute(trace, DELTA, INTER) is None

    def test_execute_phase_is_separated(self):
        _, trace, _ = traced_commit(is_global=False)
        a = attribute(trace, DELTA, INTER)
        # Two parallel snapshot reads: one δ round trip = 2δ.
        assert a.execute_seconds == pytest.approx(2 * DELTA, abs=1e-3)


class TestSummarize:
    def test_modal_formula_and_term_means(self):
        attributions = []
        for _ in range(2):
            _, trace, _ = traced_commit(is_global=True)
            attributions.append(attribute(trace, DELTA, INTER))
        summary = summarize(attributions)
        assert summary is not None
        assert summary.count == 2
        assert summary.agreement == 1.0
        assert summary.formula == "4δ+2Δ"
        assert summary.max_residual < 1e-9
        assert summary.breakdown() == "request δ + order 2δ+Δ + vote Δ + notify δ"
        total = sum(mean for _, mean, _ in summary.term_means)
        assert total == pytest.approx(summary.mean_measured, abs=1e-9)

    def test_empty_population(self):
        assert summarize([]) is None
        assert summarize([None]) is None
