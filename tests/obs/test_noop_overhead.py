"""Disabled tracing is free: the guard pattern allocates nothing.

Instrumentation sites are written ``if obs.enabled: obs.event(...)``, so
with the shared :data:`NULL_RECORDER` the keyword dictionary for the
event is never constructed.  This test pins that property with
``tracemalloc``: a hot loop over the guard leaves zero live allocations
attributed to this file.
"""

import tracemalloc

from repro.obs.recorder import NULL_RECORDER, SpanRecorder


def _hot_loop(obs, n: int = 2000) -> None:
    node = "s1"
    for i in range(n):
        if obs.enabled:
            obs.event("server.deliver", node, i, partition="p0", dc=i)
        if obs.enabled:
            obs.event("vote.arrive", node, i, partition="p1", src="s2", vote="c")


def _live_bytes_from_this_file(fn) -> int:
    fn()  # warm caches (bytecode, attribute lookups) outside the window
    tracemalloc.start()
    try:
        here = [tracemalloc.Filter(True, __file__)]
        before = tracemalloc.take_snapshot().filter_traces(here)
        fn()
        after = tracemalloc.take_snapshot().filter_traces(here)
    finally:
        tracemalloc.stop()
    return sum(
        max(stat.size_diff, 0) for stat in after.compare_to(before, "lineno")
    )


def test_disabled_recorder_allocates_nothing():
    assert _live_bytes_from_this_file(lambda: _hot_loop(NULL_RECORDER)) == 0


def test_enabled_recorder_does_allocate():
    """Sanity check that the measurement would catch real allocations."""
    recorder = SpanRecorder()
    grown = _live_bytes_from_this_file(lambda: _hot_loop(recorder))
    assert grown > 0
    assert len(recorder.events) == 2 * 2000 * 2  # warm-up + measured pass
