"""Unit tests for key-popularity samplers."""

import random

import pytest

from repro.workload.distributions import UniformSampler, ZipfSampler


class TestUniform:
    def test_bounds(self):
        sampler = UniformSampler(10)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(200))
        assert sampler.population == 10

    def test_roughly_flat(self):
        sampler = UniformSampler(4)
        rng = random.Random(2)
        counts = [0] * 4
        for _ in range(4000):
            counts[sampler.sample(rng)] += 1
        assert min(counts) > 800

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipf:
    def test_bounds(self):
        sampler = ZipfSampler(100, theta=0.99)
        rng = random.Random(3)
        assert all(0 <= sampler.sample(rng) < 100 for _ in range(500))

    def test_skew_favours_low_ranks(self):
        sampler = ZipfSampler(1000, theta=0.99)
        rng = random.Random(4)
        samples = [sampler.sample(rng) for _ in range(5000)]
        top_ten_share = sum(1 for s in samples if s < 10) / len(samples)
        assert top_ten_share > 0.25  # heavy head

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, theta=0.0)
        rng = random.Random(5)
        counts = [0] * 10
        for _ in range(10000):
            counts[sampler.sample(rng)] += 1
        assert min(counts) > 700

    def test_higher_theta_more_skew(self):
        rng1, rng2 = random.Random(6), random.Random(6)
        mild = ZipfSampler(500, theta=0.5)
        harsh = ZipfSampler(500, theta=1.5)
        mild_head = sum(1 for _ in range(3000) if mild.sample(rng1) == 0)
        harsh_head = sum(1 for _ in range(3000) if harsh.sample(rng2) == 0)
        assert harsh_head > mild_head

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=-1)
