"""Unit tests for the microbenchmark workload generator."""

import random

import pytest

from repro.core.partitioning import PartitionMap
from repro.errors import ConfigurationError
from repro.workload.microbench import MicroBenchmark


class TestKeySelection:
    def test_local_keys_stay_home(self):
        bench = MicroBenchmark(4, home_partition_index=2, global_fraction=0.0)
        pmap = PartitionMap.by_index(4)
        rng = random.Random(1)
        for _ in range(100):
            key_a, key_b = bench.pick_keys(rng, is_global=False)
            assert pmap.partition_of(key_a) == "p2"
            assert pmap.partition_of(key_b) == "p2"
            assert key_a != key_b

    def test_global_keys_span_two_partitions(self):
        bench = MicroBenchmark(4, home_partition_index=1, global_fraction=1.0)
        pmap = PartitionMap.by_index(4)
        rng = random.Random(2)
        for _ in range(100):
            key_a, key_b = bench.pick_keys(rng, is_global=True)
            assert pmap.partition_of(key_a) == "p1"
            assert pmap.partition_of(key_b) != "p1"

    def test_global_fraction_respected(self):
        bench = MicroBenchmark(2, 0, global_fraction=0.25)
        rng = random.Random(3)
        labels = [bench.next_txn(rng).label for _ in range(4000)]
        share = labels.count("global") / len(labels)
        assert 0.20 < share < 0.30

    def test_read_only_fraction(self):
        bench = MicroBenchmark(2, 0, global_fraction=0.1, read_only_fraction=0.5)
        rng = random.Random(4)
        specs = [bench.next_txn(rng) for _ in range(1000)]
        ro_share = sum(1 for s in specs if s.read_only) / len(specs)
        assert 0.4 < ro_share < 0.6
        assert all(s.label.startswith("ro-") for s in specs if s.read_only)


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            MicroBenchmark(2, 0, global_fraction=1.5)

    def test_globals_need_partitions(self):
        with pytest.raises(ConfigurationError):
            MicroBenchmark(1, 0, global_fraction=0.5)

    def test_home_in_range(self):
        with pytest.raises(ConfigurationError):
            MicroBenchmark(2, 5, global_fraction=0.0)


class TestPrograms:
    def test_update_program_increments(self):
        from repro.workload.microbench import _update_two

        program = _update_two("0/a", "0/b")
        writes = {}

        class FakeTxn:
            def write(self, key, value):
                writes[key] = value

        gen = program(FakeTxn())
        request = gen.send(None)
        assert set(request.keys) == {"0/a", "0/b"}
        try:
            gen.send({"0/a": 4, "0/b": None})
        except StopIteration:
            pass
        assert writes == {"0/a": 5, "0/b": 1}
