"""Load shapes and the hot-key storm workload (repro.workload.overload)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.microbench import MicroBenchmark
from repro.workload.overload import ConstantRate, FlashCrowd, HotKeyStorm

HOT = ("0/hot-a", "0/hot-b", "0/hot-c")


class TestConstantRate:
    def test_rate_is_flat(self):
        shape = ConstantRate(40.0)
        assert [shape.rate(t) for t in (0.0, 1.0, 1e6)] == [40.0, 40.0, 40.0]

    def test_zero_allowed_negative_rejected(self):
        assert ConstantRate(0.0).rate(5.0) == 0.0
        with pytest.raises(ConfigurationError):
            ConstantRate(-1.0)


class TestFlashCrowd:
    def test_step_shape_boundaries(self):
        shape = FlashCrowd(base=10.0, peak=100.0, start=5.0, end=10.0)
        assert shape.rate(4.999) == 10.0
        assert shape.rate(5.0) == 100.0  # window is [start, end)
        assert shape.rate(9.999) == 100.0
        assert shape.rate(10.0) == 10.0

    def test_linear_ramps(self):
        shape = FlashCrowd(base=10.0, peak=110.0, start=0.0, end=10.0, ramp=2.0)
        assert shape.rate(1.0) == pytest.approx(60.0)  # halfway up
        assert shape.rate(2.0) == pytest.approx(110.0)  # plateau start
        assert shape.rate(5.0) == pytest.approx(110.0)
        assert shape.rate(9.0) == pytest.approx(60.0)  # halfway down

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlashCrowd(base=-1.0, peak=10.0, start=0.0, end=1.0)
        with pytest.raises(ConfigurationError):
            FlashCrowd(base=10.0, peak=5.0, start=0.0, end=1.0)
        with pytest.raises(ConfigurationError):
            FlashCrowd(base=1.0, peak=2.0, start=1.0, end=1.0)
        with pytest.raises(ConfigurationError):
            # 2 * ramp must fit inside the window.
            FlashCrowd(base=1.0, peak=2.0, start=0.0, end=1.0, ramp=0.6)


class TestHotKeyStorm:
    @staticmethod
    def _storm(now_holder, storm_fraction=1.0):
        base = MicroBenchmark(1, 0, 0.0, items_per_partition=100)
        return HotKeyStorm(
            base,
            clock=lambda: now_holder[0],
            hot_keys=HOT,
            start=5.0,
            end=10.0,
            storm_fraction=storm_fraction,
        )

    def test_storm_window_produces_hot_txns(self):
        now = [6.0]
        storm = self._storm(now)
        rng = random.Random(7)
        for _ in range(20):
            spec = storm.next_txn(rng)
            assert spec.label == "hot"

    def test_outside_window_delegates_to_base(self):
        storm = self._storm([4.0])
        rng = random.Random(7)
        assert all(storm.next_txn(rng).label != "hot" for _ in range(20))
        storm_after = self._storm([10.0])
        assert all(storm_after.next_txn(rng).label != "hot" for _ in range(20))

    def test_storm_fraction_mixes_traffic(self):
        storm = self._storm([6.0], storm_fraction=0.5)
        rng = random.Random(7)
        labels = [storm.next_txn(rng).label for _ in range(200)]
        hot = labels.count("hot")
        assert 60 < hot < 140  # ~50% with slack

    def test_initial_data_seeds_hot_keys(self):
        data = self._storm([0.0]).initial_data()
        for key in HOT:
            assert data[key] == 0

    def test_initial_data_never_clobbers_the_base(self):
        class SeededBase(MicroBenchmark):
            def initial_data(self):
                return {HOT[0]: 42, "0/cold": 7}

        storm = HotKeyStorm(
            SeededBase(1, 0, 0.0, items_per_partition=10),
            clock=lambda: 0.0,
            hot_keys=HOT,
            start=5.0,
            end=10.0,
        )
        data = storm.initial_data()
        assert data[HOT[0]] == 42  # base's value wins
        assert data["0/cold"] == 7
        assert data[HOT[1]] == 0  # missing hot keys are zero-seeded

    def test_hot_program_increments_both_keys(self):
        """The storm program reads two hot keys and writes both + 1."""
        from repro.workload.overload import _update_hot

        writes = {}

        class FakeTxn:
            def write(self, key, value):
                writes[key] = value

        program = _update_hot(HOT[0], HOT[1])(FakeTxn())
        read = next(program)
        assert set(read.keys) == {HOT[0], HOT[1]}
        with pytest.raises(StopIteration):
            program.send({HOT[0]: 3, HOT[1]: "unseeded"})
        assert writes == {HOT[0]: 4, HOT[1]: 1}

    def test_validation(self):
        base = MicroBenchmark(1, 0, 0.0, items_per_partition=10)
        with pytest.raises(ConfigurationError):
            HotKeyStorm(base, lambda: 0.0, HOT[:1], 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            HotKeyStorm(base, lambda: 0.0, HOT, 0.0, 1.0, storm_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotKeyStorm(base, lambda: 0.0, HOT, 1.0, 1.0)
