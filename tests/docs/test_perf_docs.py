"""docs/PERFORMANCE.md is the benchmark catalogue — keep it honest.

Every ``benchmarks/bench_*.py`` must be listed there (backticked, like
code), and every committed ``benchmarks/BENCH_*.json`` baseline must
parse against the schema the page documents (§2): a ``"benchmark"``
string plus exactly one of ``"results"`` (a non-empty list of cell
dicts) or ``"result"`` (a single cell dict).
"""

import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
PERFORMANCE = (REPO / "docs" / "PERFORMANCE.md").read_text()

BENCH_SCRIPTS = sorted((REPO / "benchmarks").glob("bench_*.py"))
BASELINES = sorted((REPO / "benchmarks").glob("BENCH_*.json"))


def test_benchmarks_exist():
    assert BENCH_SCRIPTS, "no benchmark scripts found"
    assert BASELINES, "no committed baselines found"


@pytest.mark.parametrize("script", BENCH_SCRIPTS, ids=lambda p: p.name)
def test_every_benchmark_script_is_catalogued(script):
    assert f"`benchmarks/{script.name}`" in PERFORMANCE, (
        f"benchmarks/{script.name} is missing from docs/PERFORMANCE.md §1"
    )


@pytest.mark.parametrize("baseline", BASELINES, ids=lambda p: p.name)
def test_every_baseline_is_catalogued(baseline):
    assert f"`benchmarks/{baseline.name}`" in PERFORMANCE, (
        f"benchmarks/{baseline.name} is missing from docs/PERFORMANCE.md"
    )


@pytest.mark.parametrize("baseline", BASELINES, ids=lambda p: p.name)
def test_baseline_matches_documented_schema(baseline):
    data = json.loads(baseline.read_text())
    assert isinstance(data, dict)
    assert isinstance(data.get("benchmark"), str) and data["benchmark"]
    has_results = "results" in data
    has_result = "result" in data
    assert has_results != has_result, (
        f"{baseline.name}: exactly one of 'results'/'result' required"
    )
    cells = data["results"] if has_results else [data["result"]]
    assert cells, f"{baseline.name}: empty results"
    for cell in cells:
        assert isinstance(cell, dict) and cell, (
            f"{baseline.name}: cells must be non-empty objects"
        )
