"""Docs stay honest: links resolve, experiment IDs exist, counters documented.

These run in the CI ``docs`` job (see ``.github/workflows/ci.yml``) so a
rename or a deleted section fails the build instead of silently leaving
README.md pointing at nothing.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO / "README.md", REPO / "EXPERIMENTS.md", *(REPO / "docs").glob("*.md")]
)

# [text](target) — target up to the first whitespace or closing paren.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXPERIMENT_RE = re.compile(r"python -m repro\.experiments ([A-Z]\d+)")


def _doc_links(doc: Path) -> list[str]:
    return LINK_RE.findall(doc.read_text())


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in _doc_links(doc):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_documented_experiment_ids_are_registered(doc):
    from repro.experiments.__main__ import REGISTRY

    cited = set(EXPERIMENT_RE.findall(doc.read_text()))
    unknown = cited - set(REGISTRY)
    assert not unknown, f"{doc.name} cites unregistered experiments {unknown}"


def test_every_server_counter_is_documented_in_protocol_md():
    """docs/PROTOCOL.md §14 must list every counter server_stats() exports."""
    from tests.conftest import make_cluster

    cluster = make_cluster(1)
    cluster.start()
    cluster.world.run_for(0.5)
    stats = cluster.server_stats()
    counters = {name for node_stats in stats.values() for name in node_stats}
    assert counters, "server_stats() exported nothing"
    protocol = (REPO / "docs" / "PROTOCOL.md").read_text()
    missing = {name for name in counters if f"`{name}`" not in protocol}
    assert not missing, f"counters absent from docs/PROTOCOL.md: {sorted(missing)}"


def test_every_registry_metric_is_documented_in_observability_md():
    """docs/OBSERVABILITY.md §19 must list every metric the telemetry
    registries declare — server and autoscale alike — so dashboards can
    be built from the doc without reading wiring.py."""
    from tests.conftest import make_cluster

    cluster = make_cluster(1)
    cluster.enable_autoscale()
    names = {spec.name for spec in cluster.autoscale.registry.specs()}
    for handle in cluster.servers.values():
        names |= {spec.name for spec in handle.server.registry.specs()}
    assert names, "registries declared nothing"
    observability = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    missing = {name for name in names if f"`{name}`" not in observability}
    assert not missing, (
        f"metrics absent from docs/OBSERVABILITY.md: {sorted(missing)}"
    )
