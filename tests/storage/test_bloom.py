"""Unit and property tests for the bloom filter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.bloom import BloomFilter


class TestBasics:
    def test_added_keys_are_members(self):
        bloom = BloomFilter.with_capacity(100)
        bloom.add("key1")
        bloom.add(("tuple", 2))
        assert "key1" in bloom
        assert ("tuple", 2) in bloom

    def test_empty_filter_has_no_members(self):
        bloom = BloomFilter.with_capacity(100)
        assert "anything" not in bloom
        assert bloom.false_positive_rate() == 0.0

    def test_contains_any(self):
        bloom = BloomFilter.from_keys(["a", "b"])
        assert bloom.contains_any(["zzz", "b"])
        assert not bloom.contains_any(["x", "y", "z"])
        assert not bloom.contains_any([])

    def test_sizing_from_capacity(self):
        small = BloomFilter.with_capacity(10, fp_rate=0.01)
        large = BloomFilter.with_capacity(1000, fp_rate=0.01)
        assert large.num_bits > small.num_bits

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(10, fp_rate=1.5)

    def test_observed_fp_rate_near_target(self):
        bloom = BloomFilter.from_keys([f"member{i}" for i in range(500)], fp_rate=0.01)
        false_positives = sum(1 for i in range(5000) if f"absent{i}" in bloom)
        assert false_positives / 5000 < 0.05  # generous bound around 1%

    def test_estimate_tracks_fill(self):
        bloom = BloomFilter.with_capacity(100, fp_rate=0.01)
        for i in range(100):
            bloom.add(i)
        assert 0.001 < bloom.false_positive_rate() < 0.1


class TestSerialization:
    def test_roundtrip_preserves_membership(self):
        bloom = BloomFilter.from_keys(["x", "y", "z"], fp_rate=0.001)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert "x" in restored and "y" in restored and "z" in restored
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        assert restored.count == bloom.count

    def test_truncated_bytes_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\x00\x01")

    def test_size_mismatch_rejected(self):
        bloom = BloomFilter.from_keys(["x"])
        data = bloom.to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(data[:-1])

    def test_deterministic_across_instances(self):
        """Same keys -> identical wire bytes (no process-randomized hashing)."""
        a = BloomFilter.from_keys(["k1", "k2", "k3"], fp_rate=0.01, expected_items=3)
        b = BloomFilter.from_keys(["k1", "k2", "k3"], fp_rate=0.01, expected_items=3)
        assert a.to_bytes() == b.to_bytes()


class TestProperties:
    @given(st.lists(st.text(max_size=20), max_size=100))
    def test_no_false_negatives(self, keys):
        """The defining bloom-filter property: members are always found."""
        bloom = BloomFilter.from_keys(keys, fp_rate=0.01)
        for key in keys:
            assert key in bloom

    @given(st.lists(st.text(max_size=16), min_size=1, max_size=50))
    def test_roundtrip_is_lossless(self, keys):
        bloom = BloomFilter.from_keys(keys)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        for key in keys:
            assert key in restored
