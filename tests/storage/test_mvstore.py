"""Unit and property tests for the multiversion store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SnapshotTooOldError, StorageError
from repro.storage.mvstore import MultiVersionStore


class TestBasics:
    def test_missing_key_reads_as_initial(self):
        store = MultiVersionStore()
        assert store.read("x").value is None
        assert store.read("x").version == 0

    def test_apply_and_read_latest(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, version=1)
        assert store.read_latest("x").value == 1
        assert store.current_version == 1

    def test_seed_loads_version_zero(self):
        store = MultiVersionStore()
        store.seed({"x": 10})
        assert store.read("x", snapshot=0).value == 10
        assert store.current_version == 0

    def test_seed_after_apply_rejected(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, 1)
        with pytest.raises(StorageError):
            store.seed({"y": 2})

    def test_snapshot_read_sees_old_version(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, 1)
        store.apply({"x": 2}, 2)
        store.apply({"x": 3}, 3)
        assert store.read("x", snapshot=1).value == 1
        assert store.read("x", snapshot=2).value == 2
        assert store.read("x", snapshot=3).value == 3

    def test_snapshot_between_versions_sees_most_recent_below(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, 1)
        store.apply({"y": 9}, 2)  # x untouched at version 2
        store.apply({"x": 3}, 3)
        assert store.read("x", snapshot=2).value == 1

    def test_snapshot_zero_sees_only_seed(self):
        store = MultiVersionStore()
        store.seed({"x": "initial"})
        store.apply({"x": "new"}, 1)
        assert store.read("x", snapshot=0).value == "initial"

    def test_versions_must_increase(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, 1)
        with pytest.raises(StorageError):
            store.apply({"x": 2}, 1)

    def test_empty_writeset_still_bumps_version(self):
        store = MultiVersionStore()
        store.apply({}, 1)
        assert store.current_version == 1

    def test_contains_and_len(self):
        store = MultiVersionStore()
        store.apply({"x": 1, "y": 2}, 1)
        assert "x" in store and "z" not in store
        assert len(store) == 2
        assert set(store.keys()) == {"x", "y"}


class TestGarbageCollection:
    def test_gc_keeps_latest_at_or_below_horizon(self):
        store = MultiVersionStore()
        for version in range(1, 6):
            store.apply({"x": version}, version)
        dropped = store.collect_garbage(3)
        assert dropped == 2  # versions 1, 2 dropped; 3 kept as horizon value
        assert store.read("x", snapshot=3).value == 3
        assert store.read("x", snapshot=5).value == 5

    def test_read_below_horizon_raises(self):
        store = MultiVersionStore()
        for version in range(1, 6):
            store.apply({"x": version}, version)
        store.collect_garbage(3)
        with pytest.raises(SnapshotTooOldError):
            store.read("x", snapshot=2)

    def test_gc_horizon_monotone(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, 1)
        store.collect_garbage(1)
        with pytest.raises(StorageError):
            store.collect_garbage(0)

    def test_gc_on_untouched_keys_is_safe(self):
        store = MultiVersionStore()
        store.apply({"x": 1}, 1)
        store.apply({"y": 2}, 2)
        store.collect_garbage(2)
        assert store.read("x", snapshot=2).value == 1


class TestProperties:
    @given(
        writes=st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers(-100, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_snapshot_reads_are_immutable_history(self, writes):
        """Once written at version v, key@v reads the same forever."""
        store = MultiVersionStore()
        expected: dict[tuple[str, int], int] = {}
        latest: dict[str, int] = {}
        for version, (key, value) in enumerate(writes, start=1):
            store.apply({key: value}, version)
            latest[key] = value
            for known_key, known_value in latest.items():
                expected[(known_key, version)] = known_value
        for (key, version), value in expected.items():
            assert store.read(key, snapshot=version).value == value

    @given(st.lists(st.sampled_from("ab"), min_size=1, max_size=20))
    def test_version_chain_sorted(self, keys):
        store = MultiVersionStore()
        for version, key in enumerate(keys, start=1):
            store.apply({key: version}, version)
        for key in set(keys):
            versions = [vv.version for vv in store.versions_of(key)]
            assert versions == sorted(versions)
