"""Unit tests for the write-ahead log (including crash recovery)."""

import pytest

from repro.errors import StorageError
from repro.storage.wal import WriteAheadLog


class TestInMemory:
    def test_append_and_iterate(self):
        log = WriteAheadLog()
        assert log.append(b"one") == 0
        assert log.append(b"two") == 1
        assert list(log) == [b"one", b"two"]
        assert log[1] == b"two"
        assert len(log) == 2

    def test_rejects_non_bytes(self):
        with pytest.raises(StorageError):
            WriteAheadLog().append("text")  # type: ignore[arg-type]


class TestFileBacked:
    def test_recovery_replays_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append(b"alpha")
            log.append(b"beta")
        recovered = WriteAheadLog(path)
        assert list(recovered) == [b"alpha", b"beta"]
        recovered.close()

    def test_append_after_recovery_continues(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append(b"first")
        with WriteAheadLog(path) as log:
            log.append(b"second")
        with WriteAheadLog(path) as log:
            assert list(log) == [b"first", b"second"]

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append(b"complete")
            log.append(b"will-be-torn")
        # Simulate a crash mid-write: chop bytes off the last record.
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        recovered = WriteAheadLog(path)
        assert list(recovered) == [b"complete"]
        recovered.append(b"after-recovery")
        recovered.close()
        final = WriteAheadLog(path)
        assert list(final) == [b"complete", b"after-recovery"]
        final.close()

    def test_corrupt_crc_truncates_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append(b"good")
            log.append(b"evil")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        recovered = WriteAheadLog(path)
        assert list(recovered) == [b"good"]
        recovered.close()

    def test_empty_and_missing_files(self, tmp_path):
        missing = WriteAheadLog(tmp_path / "sub" / "new.log")
        assert len(missing) == 0
        missing.close()
        empty_path = tmp_path / "empty.log"
        empty_path.touch()
        empty = WriteAheadLog(empty_path)
        assert len(empty) == 0
        empty.close()

    def test_binary_payloads_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        blob = bytes(range(256)) * 3
        with WriteAheadLog(path) as log:
            log.append(blob)
        recovered = WriteAheadLog(path)
        assert recovered[0] == blob
        recovered.close()

    def test_fsync_mode_works(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=True) as log:
            log.append(b"durable")
        assert list(WriteAheadLog(tmp_path / "wal.log")) == [b"durable"]


class TestRewrite:
    def test_in_memory_rewrite(self):
        log = WriteAheadLog()
        for payload in (b"a", b"b", b"c"):
            log.append(payload)
        log.rewrite([b"b", b"c"])
        assert list(log) == [b"b", b"c"]
        log.append(b"d")
        assert list(log) == [b"b", b"c", b"d"]

    def test_file_backed_rewrite_survives_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            for payload in (b"one", b"two", b"three"):
                log.append(payload)
            log.rewrite([b"three"])
            log.append(b"four")
        reopened = WriteAheadLog(path)
        assert list(reopened) == [b"three", b"four"]
        reopened.close()

    def test_rewrite_to_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append(b"gone")
            log.rewrite([])
        reopened = WriteAheadLog(path)
        assert len(reopened) == 0
        reopened.close()

    def test_no_leftover_temp_file(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append(b"x")
            log.rewrite([b"x"])
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".compact"]
        assert leftovers == []
