"""RingSeries / RateTracker / Ewma — the shared series plumbing."""

import pytest

from repro.telemetry import Ewma, RateTracker, RingSeries, mad, median


class TestRingSeries:
    def test_append_and_read_in_order(self):
        series = RingSeries(8)
        for i in range(5):
            series.append(float(i), float(i * 10))
        assert len(series) == 5
        assert series.times() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert series.values() == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert series.last() == (4.0, 40.0)

    def test_capacity_bounds_memory_keeping_newest(self):
        series = RingSeries(4)
        for i in range(10):
            series.append(float(i), float(i))
        assert len(series) == 4
        assert series.values() == [6.0, 7.0, 8.0, 9.0]
        assert series.items()[0] == (6.0, 6.0)

    def test_empty_series(self):
        series = RingSeries(4)
        assert len(series) == 0
        assert series.values() == []
        with pytest.raises(IndexError):
            series.last()


class TestRateTracker:
    def test_first_observation_has_no_rate(self):
        tracker = RateTracker()
        assert tracker.update(1.0, 100.0) is None

    def test_rate_between_observations(self):
        tracker = RateTracker()
        tracker.update(0.0, 0.0)
        assert tracker.update(2.0, 50.0) == 25.0
        assert tracker.update(3.0, 50.0) == 0.0

    def test_zero_elapsed_yields_none(self):
        tracker = RateTracker()
        tracker.update(1.0, 10.0)
        assert tracker.update(1.0, 20.0) is None

    def test_reset_forgets_the_anchor(self):
        tracker = RateTracker()
        tracker.update(0.0, 10.0)
        tracker.reset()
        assert tracker.update(1.0, 20.0) is None


class TestEwma:
    def test_first_value_seeds(self):
        ewma = Ewma(0.5)
        assert ewma.value is None
        assert ewma.update(100.0) == 100.0

    def test_smoothing(self):
        ewma = Ewma(0.5)
        ewma.update(100.0)
        assert ewma.update(1000.0) == 0.5 * 1000.0 + 0.5 * 100.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)


class TestRobustStats:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad_degenerates_with_agreeing_majority(self):
        # Two healthy replicas agreeing exactly drive MAD to 0 — the
        # reason every health threshold carries an absolute floor.
        assert mad([0.0, 0.0, 14.0]) == 0.0
        assert mad([1.0, 5.0, 9.0]) == 4.0
