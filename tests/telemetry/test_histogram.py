"""Property tests for the log-linear histogram.

Two load-bearing claims from the instruments module's docstring:

* quantile estimates are within the documented relative-error bound of
  ``1/subbuckets`` vs the exact sample quantile, over-estimating only;
* ``merge()`` is associative and order-independent (integer bucket
  addition), so per-replica sketches can be aggregated in any order.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import HistogramSnapshot, LogLinearHistogram, MetricSpec


def make_hist(subbuckets: int = 32) -> LogLinearHistogram:
    spec = MetricSpec(name="h", kind="histogram", unit="seconds", help="")
    return LogLinearHistogram(spec, subbuckets=subbuckets)


def exact_quantile(values: list[float], q: float) -> float:
    """The definition the sketch approximates: the rank
    ``max(1, ceil(q * n))`` smallest sample."""
    ordered = sorted(values)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


values_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


class TestQuantileBound:
    @given(values=values_strategy, subbuckets=st.sampled_from([8, 32, 64]))
    @settings(max_examples=200)
    def test_estimate_within_documented_relative_error(self, values, subbuckets):
        hist = make_hist(subbuckets)
        for v in values:
            hist.observe(v)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = exact_quantile(values, q)
            estimate = hist.quantile(q)
            # Over-estimate only, by at most one linear slice of the
            # octave: relative error <= 1/subbuckets.
            assert estimate >= exact * (1 - 1e-12)
            assert estimate <= exact * (1 + 1.0 / subbuckets) * (1 + 1e-9)

    @given(values=values_strategy)
    @settings(max_examples=50)
    def test_count_total_min_max_are_exact(self, values):
        hist = make_hist()
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert math.isclose(hist.total, sum(values), rel_tol=1e-9)
        assert hist.min == min(values)
        assert hist.max == max(values)

    def test_empty_histogram(self):
        hist = make_hist()
        assert hist.quantile(0.99) == 0.0
        assert hist.count == 0
        assert hist.snapshot() == HistogramSnapshot(
            count=0, total=0.0, min=0.0, max=0.0, p50=0.0, p99=0.0, p999=0.0
        )

    def test_underflow_bucket(self):
        hist = make_hist()
        for _ in range(10):
            hist.observe(0.0)
        hist.observe(4.0)
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.999) >= 4.0


class TestMerge:
    @given(
        shards=st.lists(values_strategy, min_size=2, max_size=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100)
    def test_merge_is_order_independent_and_associative(self, shards, seed):
        import random

        def sketch(vals):
            h = make_hist()
            for v in vals:
                h.observe(v)
            return h

        # Left-fold in declaration order…
        left = sketch([])
        for shard in shards:
            left.merge(sketch(shard))
        # …vs a shuffled right-leaning fold.
        order = list(shards)
        random.Random(seed).shuffle(order)
        right = sketch(order[-1])
        for shard in reversed(order[:-1]):
            folded = sketch(shard)
            folded.merge(right)
            right = folded
        assert left._buckets == right._buckets
        assert left.count == right.count
        assert left.min == right.min
        assert left.max == right.max
        assert math.isclose(left.total, right.total, rel_tol=1e-9, abs_tol=1e-12)
        for q in (0.5, 0.99, 0.999):
            assert left.quantile(q) == right.quantile(q)

    @given(values=values_strategy)
    @settings(max_examples=50)
    def test_merge_equals_observing_everything(self, values):
        mid = len(values) // 2
        a, b = make_hist(), make_hist()
        for v in values[:mid]:
            a.observe(v)
        for v in values[mid:]:
            b.observe(v)
        a.merge(b)
        whole = make_hist()
        for v in values:
            whole.observe(v)
        assert a._buckets == whole._buckets
        assert a.count == whole.count
        for q in (0.5, 0.99):
            assert a.quantile(q) == whole.quantile(q)

    def test_mismatched_subbuckets_refuse_to_merge(self):
        import pytest

        with pytest.raises(ValueError):
            make_hist(32).merge(make_hist(16))
