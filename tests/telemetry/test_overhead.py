"""Telemetry disabled is free: the guard pattern allocates nothing.

Mirrors ``tests/obs/test_noop_overhead.py``.  Server observe sites are
written ``if self.telemetry_enabled: hist.observe(...)``, so with
telemetry off the histogram machinery is never entered.  Two layers of
proof:

* a hot loop over the guard leaves **zero** live allocations attributed
  to this file or to the instruments module;
* a real ``SdurServer`` ingesting deliveries with telemetry disabled
  leaves zero live allocations attributed to *any* module of
  ``repro.telemetry`` (the registry is bound readers only — nothing
  runs until something samples).
"""

import random
import tracemalloc

import repro.telemetry.instruments as instruments_module
from repro.core.config import SdurConfig, ServiceCosts
from repro.core.directory import ClusterDirectory
from repro.core.partitioning import PartitionMap
from repro.core.server import SdurServer
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection

TELEMETRY_FILES = [
    instruments_module.__file__.replace("instruments.py", name)
    for name in (
        "instruments.py",
        "registry.py",
        "sampler.py",
        "series.py",
        "wiring.py",
        "health.py",
    )
]


class _GuardedSite:
    """The shape of every server observe site."""

    def __init__(self, enabled: bool, hist) -> None:
        self.telemetry_enabled = enabled
        self.hist = hist


def _hot_loop(site: _GuardedSite, n: int = 2000) -> None:
    for i in range(n):
        if site.telemetry_enabled:
            site.hist.observe(0.001 * (i % 7 + 1))


def _live_bytes(fn, files: list[str]) -> int:
    fn()  # warm caches (bytecode, attribute lookups) outside the window
    tracemalloc.start()
    try:
        filters = [tracemalloc.Filter(True, f) for f in files]
        before = tracemalloc.take_snapshot().filter_traces(filters)
        fn()
        after = tracemalloc.take_snapshot().filter_traces(filters)
    finally:
        tracemalloc.stop()
    return sum(max(stat.size_diff, 0) for stat in after.compare_to(before, "lineno"))


def _make_hist():
    from repro.telemetry import MetricRegistry

    return MetricRegistry("s1").histogram("h", unit="seconds", help="x")


def test_disabled_guard_allocates_nothing():
    site = _GuardedSite(False, _make_hist())
    files = [__file__, *TELEMETRY_FILES]
    assert _live_bytes(lambda: _hot_loop(site), files) == 0


def test_enabled_histogram_does_allocate():
    """Sanity check that the measurement would catch real recording."""
    site = _GuardedSite(True, _make_hist())
    grown = _live_bytes(lambda: _hot_loop(site), TELEMETRY_FILES)
    assert grown > 0
    assert site.hist.count == 2 * 2000  # warm-up + measured pass


# ----------------------------------------------------------------------
# The real hot path: a server ingesting deliveries, telemetry off.
# ----------------------------------------------------------------------


class _DropFabric:
    def abcast(self, group, value):
        return None


class _StubRuntime:
    node_id = "s0"

    def now(self):
        return 0.0

    def send(self, dst, msg):
        return None

    def set_timer(self, delay, callback):
        class _T:
            def cancel(self):
                return None

        return _T()

    def listen(self, handler):
        return None

    def rng(self, name):
        return random.Random(name)

    def execute(self, cost, fn):
        fn()

    def latency_estimate(self, dst):
        return 0.0

    def trace(self, category, **detail):
        return None


def _deliver(server: SdurServer, start: int, count: int) -> None:
    rng = random.Random(start)
    for seq in range(start, start + count):
        proj = TxnProjection(
            tid=TxnId("bench", seq),
            partition="p0",
            readset=ReadsetDigest.exact([f"0/k{rng.randrange(100)}"]),
            writeset={f"0/k{rng.randrange(100)}": seq},
            snapshot=server.sc,
            partitions=("p0",),
            coordinator="s0",
            client="",
        )
        server.on_adeliver(seq, proj)


def test_server_hot_path_disabled_touches_no_telemetry_code():
    server = SdurServer(
        runtime=_StubRuntime(),
        partition="p0",
        directory=ClusterDirectory(partitions={"p0": ["s0"]}, preferred={"p0": "s0"}),
        partition_map=PartitionMap.by_index(1),
        fabric=_DropFabric(),
        config=SdurConfig(
            costs=ServiceCosts(), gossip_interval=None, vote_timeout=None
        ),
    )
    assert server.telemetry_enabled is False
    _deliver(server, 0, 200)  # warm up
    tracemalloc.start()
    try:
        filters = [tracemalloc.Filter(True, f) for f in TELEMETRY_FILES]
        before = tracemalloc.take_snapshot().filter_traces(filters)
        _deliver(server, 200, 400)
        after = tracemalloc.take_snapshot().filter_traces(filters)
    finally:
        tracemalloc.stop()
    grown = sum(
        max(stat.size_diff, 0) for stat in after.compare_to(before, "lineno")
    )
    assert grown == 0, f"telemetry code allocated {grown} bytes while disabled"
    assert server.stats.committed_local + server.stats.aborted > 0
