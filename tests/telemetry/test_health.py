"""HealthMonitor: MAD outlier detection, streaks, recovery, reporting.

Driven synthetically: three stub registries whose ``sdur_sc`` gauges we
script directly, sampled on a manual clock — so every threshold
crossing is exact and the tests document the detector's arithmetic.
"""

from repro.telemetry import (
    HealthConfig,
    HealthMonitor,
    MetricRegistry,
    TelemetryConfig,
    TelemetrySampler,
)


class Rig:
    """Three replicas of p0 with scriptable sc/p99 values."""

    def __init__(self, config: HealthConfig | None = None) -> None:
        self.sc = {"s1": 0.0, "s2": 0.0, "s3": 0.0}
        self.p99 = {"s1": 0.0, "s2": 0.0, "s3": 0.0}
        self.clock = [0.0]
        self.sampler = TelemetrySampler(TelemetryConfig(), clock=lambda: self.clock[0])
        for node in self.sc:
            registry = MetricRegistry(node)
            registry.gauge("sdur_sc", fn=lambda n=node: self.sc[n])
            hist = registry.histogram("sdur_commit_latency")
            # Keep p99 scriptable without observing samples: overwrite
            # the snapshot path via a gauge-shaped derived metric is not
            # possible, so script latency through sc only and leave the
            # histogram empty (p99 = 0 for everyone: never an outlier).
            del hist
            self.sampler.attach(node, registry)
        self.monitor = HealthMonitor(
            self.sampler,
            members=lambda: {"p0": ["s1", "s2", "s3"]},
            config=config or HealthConfig(mad_k=3.0, sustain=3, apply_lag_floor=8.0),
        )

    def tick(self, **sc: float) -> None:
        self.clock[0] += 0.5
        for node, value in sc.items():
            self.sc[node] = value
        self.sampler.sample()


class TestDetection:
    def test_healthy_cluster_never_flags(self):
        rig = Rig()
        for i in range(10):
            # Normal jitter: replicas within a couple versions.
            rig.tick(s1=i * 100.0, s2=i * 100.0 - 2, s3=i * 100.0 - 1)
        assert rig.monitor.degraded() == []
        assert rig.monitor.events == []

    def test_lagging_replica_flags_after_sustain_samples(self):
        rig = Rig()
        rig.tick(s1=100, s2=100, s3=100)
        for i in range(1, 4):  # s3 falls 20 versions/sample behind
            rig.tick(s1=100 + i * 100, s2=100 + i * 100, s3=100 + i * 80)
        assert rig.monitor.degraded() == ["s3"]
        ((t, node, status, reason),) = rig.monitor.events
        assert (node, status) == ("s3", "degraded")
        assert "apply_lag" in reason
        assert t == rig.clock[0]  # flagged on the 3rd outlier sample

    def test_two_outlier_samples_do_not_flag(self):
        rig = Rig()
        rig.tick(s1=0, s2=0, s3=0)
        rig.tick(s1=100, s2=100, s3=50)
        rig.tick(s1=200, s2=200, s3=150)
        assert rig.monitor.degraded() == []
        rig.tick(s1=300, s2=300, s3=300)  # caught back up: streak resets
        rig.tick(s1=400, s2=400, s3=350)
        rig.tick(s1=500, s2=500, s3=450)
        assert rig.monitor.degraded() == []

    def test_lag_below_absolute_floor_never_flags(self):
        # MAD is 0 when two replicas agree exactly; without the floor a
        # 1-version lag would be an outlier.  With floor=8 it is not.
        rig = Rig()
        for i in range(10):
            rig.tick(s1=i * 10.0, s2=i * 10.0, s3=i * 10.0 - 5)
        assert rig.monitor.degraded() == []

    def test_recovery_after_sustain_clean_samples(self):
        rig = Rig()
        rig.tick(s1=0, s2=0, s3=0)
        for i in range(1, 5):
            rig.tick(s1=i * 100, s2=i * 100, s3=i * 50)
        assert rig.monitor.degraded() == ["s3"]
        for i in range(5, 9):  # s3 catches up and stays caught up
            rig.tick(s1=i * 100, s2=i * 100, s3=i * 100)
        assert rig.monitor.degraded() == []
        statuses = [status for (_, _, status, _) in rig.monitor.events]
        assert statuses == ["degraded", "ok"]

    def test_small_partitions_are_skipped(self):
        rig = Rig()
        rig.monitor._members = lambda: {"p0": ["s1", "s2"]}  # < min_peers
        for i in range(6):
            rig.tick(s1=i * 100.0, s2=0.0, s3=0.0)
        assert rig.monitor.nodes == {}


class TestReport:
    def test_report_shape(self):
        rig = Rig()
        rig.tick(s1=0, s2=0, s3=0)
        for i in range(1, 4):
            rig.tick(s1=i * 100, s2=i * 100, s3=i * 60)
        report = rig.monitor.report()
        assert report["degraded"] == ["s3"]
        assert report["nodes"]["s3"]["status"] == "degraded"
        assert report["nodes"]["s3"]["partition"] == "p0"
        assert report["nodes"]["s3"]["probes"]["apply_lag"] == 120.0
        assert report["nodes"]["s1"]["status"] == "ok"
        assert report["events"] == rig.monitor.events

    def test_queue_slo_breach_is_reported_not_flagged(self):
        config = HealthConfig(queue_slo=4)
        rig = Rig(config)
        for node in rig.sc:
            rig.sampler.registries[node].gauge("sdur_queue_depth", fn=lambda: 10.0)
        for i in range(6):
            rig.tick(s1=i * 10.0, s2=i * 10.0, s3=i * 10.0)
        # Every replica over the SLO: reported in probes, nobody flagged
        # (overload is absolute, gray failure is relative).
        assert rig.monitor.degraded() == []
        for node_report in rig.monitor.report()["nodes"].values():
            assert node_report["probes"]["queue_slo_breach"] == 1.0
