"""Exporters: OpenMetrics + JSONL round-trips, dashboard rendering."""

import pytest

from repro.telemetry import (
    MetricRegistry,
    TelemetryConfig,
    TelemetrySampler,
    export_jsonl,
    parse_jsonl,
    parse_openmetrics,
    render_dashboard,
    render_openmetrics,
    sparkline,
)


def two_node_registries() -> dict[str, MetricRegistry]:
    registries = {}
    for node, committed in (("s1", 10), ("s2", 12)):
        registry = MetricRegistry(node)
        registry.counter(
            "sdur_committed_local",
            unit="transactions",
            help="Local commits.",
            fn=lambda c=committed: c,
        )
        registry.gauge("sdur_queue_depth", unit="deliveries", help="Backlog.", fn=lambda: 3)
        hist = registry.histogram("sdur_commit_latency", unit="seconds", help="Latency.")
        for v in (0.001, 0.002, 0.004, 0.008):
            hist.observe(v)
        registries[node] = registry
    return registries


class TestOpenMetrics:
    def test_render_shape(self):
        text = render_openmetrics(two_node_registries())
        assert "# HELP sdur_committed_local Local commits." in text
        assert "# TYPE sdur_committed_local counter" in text
        assert "# UNIT sdur_committed_local transactions" in text
        assert 'sdur_committed_local_total{node="s1"} 10' in text
        assert 'sdur_queue_depth{node="s2"} 3' in text
        assert 'sdur_commit_latency_count{node="s1"} 4' in text
        assert 'le="+Inf"' in text
        assert text.rstrip().endswith("# EOF")

    def test_round_trip(self):
        registries = two_node_registries()
        parsed = parse_openmetrics(render_openmetrics(registries))
        assert parsed["s1"]["sdur_committed_local"] == 10.0
        assert parsed["s2"]["sdur_committed_local"] == 12.0
        assert parsed["s1"]["sdur_queue_depth"] == 3.0
        assert parsed["s1"]["sdur_commit_latency_count"] == 4.0
        assert parsed["s1"]["sdur_commit_latency_sum"] == pytest.approx(0.015)
        # Histogram buckets survive with their le labels.
        buckets = [k for k in parsed["s1"] if k.startswith("sdur_commit_latency_bucket")]
        assert buckets

    def test_parse_rejects_truncated_body(self):
        with pytest.raises(ValueError):
            parse_openmetrics('sdur_x{node="s1"} 1\n')  # no # EOF

    def test_parse_rejects_garbage_line(self):
        with pytest.raises(ValueError):
            parse_openmetrics("not a metric line\n# EOF")


class TestJsonl:
    def make_sampler(self) -> TelemetrySampler:
        clock = [0.0]
        sampler = TelemetrySampler(TelemetryConfig(), clock=lambda: clock[0])
        for node, registry in two_node_registries().items():
            sampler.attach(node, registry)
        for t in (1.0, 2.0, 3.0):
            clock[0] = t
            sampler.sample()
        return sampler

    def test_round_trip(self):
        sampler = self.make_sampler()
        rows = parse_jsonl(export_jsonl(sampler))
        # 3 samples x 2 nodes, ordered by (t, node).
        assert [(r["t"], r["node"]) for r in rows] == [
            (1.0, "s1"),
            (1.0, "s2"),
            (2.0, "s1"),
            (2.0, "s2"),
            (3.0, "s1"),
            (3.0, "s2"),
        ]
        assert rows[0]["metrics"]["sdur_committed_local"] == 10
        assert rows[1]["metrics"]["sdur_committed_local"] == 12
        assert rows[0]["metrics"]["sdur_commit_latency:count"] == 4

    def test_parse_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            parse_jsonl('{"t": 1.0, "node": "s1"}\n')


class TestDashboard:
    def test_sparkline_scales_and_downsamples(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(map(float, range(100))), width=10)) == 10

    def test_render_dashboard_rows(self):
        sampler = TestJsonl().make_sampler()
        text = render_dashboard(
            sampler, metrics=["sdur_committed_local", "sdur_queue_depth"]
        )
        assert "sdur_committed_local (rate/s)" in text  # counters as rates
        assert "sdur_queue_depth" in text
        assert "s1" in text and "s2" in text
