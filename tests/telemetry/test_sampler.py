"""TelemetrySampler on a live sim cluster: ticking, series, membership."""

from repro.core.config import SdurConfig
from repro.telemetry import MetricRegistry, TelemetryConfig, TelemetrySampler
from tests.conftest import make_cluster, run_txn, update_program


class TestSamplerUnit:
    def test_sample_expands_histograms_into_scalar_series(self):
        registry = MetricRegistry("s1")
        registry.counter("c", fn=lambda: 7)
        hist = registry.histogram("h")
        hist.observe(2.0)
        hist.observe(4.0)
        clock_value = [1.5]
        sampler = TelemetrySampler(TelemetryConfig(), clock=lambda: clock_value[0])
        sampler.attach("s1", registry)
        t = sampler.sample()
        assert t == 1.5
        assert sampler.latest("s1", "c") == 7
        assert sampler.latest("s1", "h:count") == 2
        assert sampler.latest("s1", "h:p99") >= 4.0
        assert sampler.values("s1", "h:sum") == [6.0]

    def test_ring_capacity_bounds_history(self):
        registry = MetricRegistry("s1")
        registry.counter("c", fn=lambda: 1)
        sampler = TelemetrySampler(
            TelemetryConfig(capacity=4), clock=lambda: 0.0
        )
        sampler.attach("s1", registry)
        for _ in range(10):
            sampler.sample()
        assert len(sampler.values("s1", "c")) == 4
        assert sampler.samples_taken == 10

    def test_detach_stops_sampling_keeps_series(self):
        registry = MetricRegistry("s1")
        registry.counter("c", fn=lambda: 1)
        sampler = TelemetrySampler(TelemetryConfig(), clock=lambda: 0.0)
        sampler.attach("s1", registry)
        sampler.sample()
        sampler.detach("s1")
        sampler.sample()
        assert len(sampler.values("s1", "c")) == 1

    def test_hooks_see_flat_scalars(self):
        registry = MetricRegistry("s1")
        registry.gauge("g", fn=lambda: 3.5)
        sampler = TelemetrySampler(TelemetryConfig(), clock=lambda: 2.0)
        sampler.attach("s1", registry)
        seen = []
        sampler.on_sample(lambda t, flat: seen.append((t, flat)))
        sampler.sample()
        assert seen == [(2.0, {"s1": {"g": 3.5}})]


class TestClusterSampling:
    def test_enable_telemetry_ticks_on_the_sim_clock(self):
        cluster = make_cluster(1)
        sampler = cluster.enable_telemetry(TelemetryConfig(interval=0.25))
        assert cluster.enable_telemetry() is sampler  # idempotent
        client = cluster.add_client()
        cluster.start()
        for _ in range(3):
            run_txn(cluster, client, update_program(["0/a"]))
        cluster.world.run_for(2.0)
        # ~2s+ of run at 0.25s interval: samples accumulated on the sim
        # clock, one series per server per metric.
        assert sampler.samples_taken >= 7
        for node in cluster.servers:
            values = sampler.values(node, "sdur_committed_local")
            assert values, f"no series for {node}"
            assert values[-1] == cluster.servers[node].server.stats.committed_local
            assert sampler.latest(node, "sdur_sc") == cluster.servers[node].server.sc

    def test_histograms_record_only_when_enabled(self):
        cluster = make_cluster(1)
        client = cluster.add_client()
        cluster.start()
        run_txn(cluster, client, update_program(["0/a"]))
        for handle in cluster.servers.values():
            assert handle.server._hist_commit_latency.count == 0

        enabled = make_cluster(1)
        enabled.enable_telemetry(TelemetryConfig())
        client = enabled.add_client()
        enabled.start()
        run_txn(enabled, client, update_program(["0/a"]))
        enabled.world.run_for(0.5)
        assert any(
            handle.server._hist_commit_latency.count > 0
            for handle in enabled.servers.values()
        )

    def test_split_created_servers_join_the_sampling_set(self):
        cluster = make_cluster(1, config=SdurConfig(checkpoint_interval=None))
        sampler = cluster.enable_telemetry(TelemetryConfig(interval=0.25))
        cluster.start()
        cluster.world.run_for(0.5)
        before = set(sampler.registries)
        cluster.split_partition("p0")
        cluster.world.run_for(2.0)
        added = set(sampler.registries) - before
        assert added, "split created no sampled servers"
        for node in added:
            assert cluster.servers[node].server.telemetry_enabled
            assert sampler.values(node, "sdur_sc")
