"""MetricRegistry: declaration, reading, and the server_stats retrofit.

The load-bearing test here is bit-identity: ``server_stats()`` now
serves the legacy per-node counter dict off the registry
(``wire_counters()``), and every existing experiment table and test
assumes the historical key set, order, and values.
"""

import pytest

from tests.conftest import make_cluster, run_txn, update_program
from repro.errors import ConfigurationError
from repro.telemetry import SERVER_WIRE_COUNTERS, MetricRegistry

#: The exact dict server_stats() has exported since the §16/§18/§19 PRs.
LEGACY_KEYS = [
    "committed_local",
    "committed_global",
    "aborted",
    "reordered",
    "noops_sent",
    "reads_served",
    "votes_ordered",
    "cycles_resolved",
    "vote_ledger_aborts",
    "ctest_calls",
    "index_hits",
    "index_fallbacks",
    "admitted",
    "shed_total",
    "queue_depth",
    "queue_depth_max",
    "stall_depth_max",
    "hotkey_updates",
    "batches_delivered",
    "batch_size_max",
    "batch_certify_ns",
    "codec_bytes_saved",
    "shard_certify_calls",
    "shard_merge_ns",
    "shard_imbalance_max",
]


class TestRegistry:
    def test_duplicate_declaration_rejected(self):
        registry = MetricRegistry("s1")
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_free_counter_and_gauge(self):
        registry = MetricRegistry("s1")
        counter = registry.counter("reqs", unit="requests", help="Requests seen.")
        gauge = registry.gauge("depth")
        counter.inc()
        counter.inc(4)
        gauge.set(7.5)
        assert registry.value("reqs") == 5
        assert registry.value("depth") == 7.5

    def test_bound_instruments_refuse_writes(self):
        registry = MetricRegistry("s1")
        counter = registry.counter("bound", fn=lambda: 42)
        with pytest.raises(TypeError):
            counter.inc()
        assert registry.value("bound") == 42

    def test_specs_carry_metadata(self):
        registry = MetricRegistry("s1")
        registry.counter("reqs", unit="requests", help="Requests seen.", wire="reqs")
        (spec,) = list(registry.specs())
        assert (spec.kind, spec.unit, spec.help, spec.wire) == (
            "counter",
            "requests",
            "Requests seen.",
            "reqs",
        )

    def test_snapshot_flattens_scalars(self):
        registry = MetricRegistry("s1")
        registry.counter("a", fn=lambda: 3)
        hist = registry.histogram("h")
        hist.observe(1.0)
        snap = registry.snapshot()
        assert snap["a"] == 3
        assert snap["h"].count == 1


class TestServerStatsRetrofit:
    def test_wire_counters_bit_identical_to_legacy_dict(self):
        """server_stats() == the hand-rolled dict it replaced, key for
        key, value for value, in the same order."""
        cluster = make_cluster(1)
        client = cluster.add_client()
        cluster.start()
        for _ in range(5):
            run_txn(cluster, client, update_program(["0/k1"]))
        cluster.world.run_for(0.5)
        stats_dicts = cluster.server_stats()
        for node_id, handle in cluster.servers.items():
            stats = handle.server.stats
            expected = {key: int(getattr(stats, key)) for key in LEGACY_KEYS}
            assert stats_dicts[node_id] == expected
            assert list(stats_dicts[node_id]) == LEGACY_KEYS
            assert all(isinstance(v, int) for v in stats_dicts[node_id].values())

    def test_wire_table_matches_legacy_schema(self):
        assert [wire for wire, _, _, _ in SERVER_WIRE_COUNTERS] == LEGACY_KEYS

    def test_every_server_metric_is_declared_with_help(self):
        cluster = make_cluster(1)
        handle = next(iter(cluster.servers.values()))
        for spec in handle.server.registry.specs():
            assert spec.name.startswith("sdur_")
            assert spec.help, f"{spec.name} declared without help text"
            assert spec.unit, f"{spec.name} declared without a unit"
