"""Unit tests for the simulation-backed runtime."""

from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.net.message import Message, message
from repro.net.topology import EU, US_EAST, Topology
from repro.runtime.sim import SimWorld


@message
@dataclass(frozen=True)
class _Msg(Message):
    n: int = 0


class TestSimNodeRuntime:
    def test_send_and_listen(self, world):
        a = world.runtime_for("a")
        b = world.runtime_for("b")
        inbox = []
        b.listen(lambda src, msg: inbox.append((src, msg)))
        a.listen(lambda src, msg: None)
        a.send("b", _Msg(n=1))
        world.run()
        assert inbox == [("a", _Msg(n=1))]

    def test_now_tracks_kernel(self, world):
        runtime = world.runtime_for("a")
        world.kernel.schedule(3.0, lambda: None)
        world.run()
        assert runtime.now() == 3.0

    def test_timer_fires_and_cancels(self, world):
        runtime = world.runtime_for("a")
        fired = []
        runtime.set_timer(1.0, lambda: fired.append("yes"))
        handle = runtime.set_timer(2.0, lambda: fired.append("no"))
        handle.cancel()
        world.run()
        assert fired == ["yes"]

    def test_rng_streams_scoped_per_node(self, world):
        a = world.runtime_for("a")
        b = world.runtime_for("b")
        assert a.rng("x").random() != b.rng("x").random()
        assert a.rng("x") is a.rng("x")

    def test_execute_charges_cpu_serially(self, world):
        runtime = world.runtime_for("a")
        done = []
        runtime.execute(1.0, lambda: done.append(runtime.now()))
        runtime.execute(0.5, lambda: done.append(runtime.now()))
        world.run()
        assert done == [1.0, 1.5]

    def test_latency_estimate_uses_model(self):
        topology = Topology()
        topology.add("a", EU)
        topology.add("b", US_EAST)
        world = SimWorld.geo(topology)
        runtime = world.runtime_for("a")
        assert runtime.latency_estimate("b") == pytest.approx(0.045)

    def test_unknown_node_in_topology_world_rejected(self):
        topology = Topology()
        topology.add("a", EU)
        world = SimWorld.geo(topology)
        with pytest.raises(ConfigurationError):
            world.runtime_for("ghost")

    def test_crash_silences_node(self, world):
        a = world.runtime_for("a")
        b = world.runtime_for("b")
        inbox = []
        b.listen(lambda src, msg: inbox.append(msg))
        a.listen(lambda src, msg: None)
        fired = []
        a.set_timer(1.0, lambda: fired.append("timer"))
        world.crash("a")
        a.send("b", _Msg())
        world.run()
        assert inbox == []
        assert fired == []

    def test_crashed_node_execute_is_noop(self, world):
        a = world.runtime_for("a")
        world.crash("a")
        done = []
        a.execute(0.0, lambda: done.append(1))
        world.run()
        assert done == []

    def test_trace_goes_to_world_tracer(self):
        world = SimWorld(seed=1, trace=True)
        runtime = world.runtime_for("a")
        runtime.trace("custom.event", value=9)
        assert world.tracer.count(category="custom.event", node="a") == 1
