"""Smoke tests of the experiment harness: tiny runs, shape sanity.

The full paper-scale sweeps live in ``benchmarks/``; here each
experiment's machinery is exercised with minimal parameters and the
qualitative shape assertions that define "reproduced" are checked where
they are cheap enough.
"""

import pytest

from repro.core.config import DelayMode
from repro.experiments.common import ExperimentTable, GeoRunParams, run_geo_microbench
from repro.geo.analytical import analytical_latencies


def tiny(params: GeoRunParams) -> GeoRunParams:
    from dataclasses import replace

    return replace(params, clients_per_partition=4, warmup=1.0, measure=6.0, drain=2.0)


class TestGeoRunner:
    def test_result_row_fields(self):
        result = run_geo_microbench(tiny(GeoRunParams(global_fraction=0.1, seed=3)))
        row = result.row()
        for field in ("tput_total", "local_p99_ms", "global_avg_ms", "aborts"):
            assert field in row
        assert result.total.committed > 0

    def test_convoy_effect_shape(self):
        """F2's headline: globals inflate locals' tail in WAN 1."""
        base = run_geo_microbench(tiny(GeoRunParams(global_fraction=0.0, seed=3)))
        mixed = run_geo_microbench(tiny(GeoRunParams(global_fraction=0.10, seed=3)))
        assert mixed.locals_.latency.p99 > 2.0 * base.locals_.latency.p99

    def test_wan2_less_sensitive_than_wan1(self):
        wan1 = run_geo_microbench(tiny(GeoRunParams("wan1", global_fraction=0.10, seed=3)))
        wan2 = run_geo_microbench(tiny(GeoRunParams("wan2", global_fraction=0.10, seed=3)))
        wan1_base = run_geo_microbench(tiny(GeoRunParams("wan1", global_fraction=0.0, seed=3)))
        wan2_base = run_geo_microbench(tiny(GeoRunParams("wan2", global_fraction=0.0, seed=3)))
        wan1_blowup = wan1.locals_.latency.p99 / wan1_base.locals_.latency.p99
        wan2_blowup = wan2.locals_.latency.p99 / wan2_base.locals_.latency.p99
        assert wan1_blowup > wan2_blowup

    def test_reordering_rescues_locals(self):
        """F4's headline: a well-sized threshold cuts locals' p99
        substantially while leaving globals within ~25%."""
        base = run_geo_microbench(tiny(GeoRunParams(global_fraction=0.10, seed=3)))
        reordered = run_geo_microbench(
            tiny(GeoRunParams(global_fraction=0.10, reorder_threshold=16, seed=3))
        )
        assert reordered.locals_.latency.p99 < 0.7 * base.locals_.latency.p99
        assert reordered.globals_.latency.mean < 1.25 * base.globals_.latency.mean

    def test_delaying_helps_at_one_percent(self):
        """F3's headline: delaying reduces locals' tail at 1% globals."""
        base = run_geo_microbench(
            tiny(GeoRunParams(global_fraction=0.01, seed=9, measure=10.0))
        )
        delayed = run_geo_microbench(
            tiny(
                GeoRunParams(
                    global_fraction=0.01,
                    delay_mode=DelayMode.FIXED,
                    delay_fixed=0.04,
                    seed=9,
                    measure=10.0,
                )
            )
        )
        assert delayed.locals_.latency.mean <= base.locals_.latency.mean * 1.05

    def test_unknown_deployment_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_geo_microbench(GeoRunParams(deployment="wan9"))


class TestExperimentTable:
    def test_render_aligns_columns(self):
        table = ExperimentTable(
            "T0",
            "demo",
            rows=[{"a": 1, "long_column": "x"}, {"a": 22, "long_column": "yyy"}],
            notes=["a note"],
        )
        text = table.render()
        assert "T0: demo" in text
        assert "long_column" in text
        assert "note: a note" in text

    def test_empty_rows_render(self):
        assert "empty" in ExperimentTable("T0", "empty", rows=[]).render()

    def test_extra_info_payload(self):
        table = ExperimentTable("F2", "t", rows=[{"x": 1}])
        info = table.extra_info()
        assert info["experiment"] == "F2"
        assert info["rows"] == [{"x": 1}]


class TestAnalyticalTable:
    def test_t1_rows_complete(self):
        for name in ("wan1", "wan2"):
            row = analytical_latencies(name, 0.005, 0.05).row()
            assert set(row) >= {
                "deployment",
                "local_commit_ms",
                "global_commit_ms",
                "remote_read_ms",
            }
