"""Tests for the ``python -m repro.experiments`` command-line runner."""

from repro.experiments.__main__ import REGISTRY, main, to_markdown
from repro.experiments.common import ExperimentTable


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {"T1", "F2", "F3", "F4", "F5", "F6", "S1", "S2", "S3"}
        assert expected <= set(REGISTRY)

    def test_extensions_registered(self):
        assert {"A1", "A2", "A3", "A4", "A5", "E1"} <= set(REGISTRY)

    def test_descriptions_are_nonempty(self):
        for exp_id, (description, runner) in REGISTRY.items():
            assert description
            assert callable(runner)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F6" in out and "E1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["ZZ"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment ids" in err

    def test_runs_selected_and_writes_markdown(self, tmp_path, monkeypatch, capsys):
        # Stub the registry so the test is instant.
        table = ExperimentTable("T0", "stub", rows=[{"x": 1, "y": "z"}], notes=["n"])
        monkeypatch.setitem(
            REGISTRY, "T0", ("stub experiment", lambda quick: table)
        )
        out_path = tmp_path / "report.md"
        assert main(["T0", "--markdown", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "T0: stub" in printed
        report = out_path.read_text()
        assert "## T0 — stub" in report
        assert "| x | y |" in report
        assert "> n" in report

    def test_case_insensitive_ids(self, monkeypatch, capsys):
        table = ExperimentTable("T0", "stub", rows=[])
        monkeypatch.setitem(REGISTRY, "T0", ("stub", lambda quick: table))
        assert main(["t0"]) == 0


class TestMarkdown:
    def test_empty_rows_render(self):
        text = to_markdown([(ExperimentTable("X", "t", rows=[]), 1.0)])
        assert "## X — t" in text
        assert "wall time: 1s" in text

    def test_multiple_tables(self):
        tables = [
            (ExperimentTable("A", "first", rows=[{"v": 1}]), 2.0),
            (ExperimentTable("B", "second", rows=[{"w": 2}]), 3.0),
        ]
        text = to_markdown(tables)
        assert text.index("## A") < text.index("## B")
