"""Unit tests for the trace recorder."""

from repro.sim.tracing import Tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit("n1", "event")
        assert tracer.events == []

    def test_enabled_tracer_records(self):
        tracer = Tracer(enabled=True)
        tracer.emit("n1", "event", detail=42)
        assert len(tracer.events) == 1
        assert tracer.events[0].node == "n1"
        assert tracer.events[0].detail == {"detail": 42}

    def test_clock_binding(self):
        time = [0.0]
        tracer = Tracer(enabled=True, clock=lambda: time[0])
        tracer.emit("n", "a")
        time[0] = 5.0
        tracer.emit("n", "b")
        assert [e.time for e in tracer.events] == [0.0, 5.0]

    def test_filter_by_category_and_node(self):
        tracer = Tracer(enabled=True)
        tracer.emit("n1", "x")
        tracer.emit("n2", "x")
        tracer.emit("n1", "y")
        assert tracer.count(category="x") == 2
        assert tracer.count(node="n1") == 2
        assert tracer.count(category="y", node="n1") == 1
        assert tracer.count(category="y", node="n2") == 0

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit("n", "x")
        tracer.clear()
        assert tracer.events == []

    def test_dump_renders_all_events(self):
        tracer = Tracer(enabled=True)
        tracer.emit("n1", "commit", tid="t1")
        tracer.emit("n2", "abort")
        dump = tracer.dump()
        assert "commit" in dump and "abort" in dump and "t1" in dump

    def test_sequence_numbers_are_monotonic(self):
        tracer = Tracer(enabled=True)
        for _ in range(5):
            tracer.emit("n", "x")
        seqs = [e.seq for e in tracer.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_sequence_breaks_ties_at_equal_sim_time(self):
        # A frozen clock: every event lands at the same simulated time,
        # yet (time, seq) still totally orders the emission sequence.
        tracer = Tracer(enabled=True, clock=lambda: 1.5)
        tracer.emit("n", "first")
        tracer.emit("n", "second")
        a, b = tracer.events
        assert a.time == b.time
        assert (a.time, a.seq) < (b.time, b.seq)
        assert f"#{a.seq}" in str(a)

    def test_clear_resets_sequence(self):
        tracer = Tracer(enabled=True)
        tracer.emit("n", "x")
        first = tracer.events[0].seq
        tracer.clear()
        tracer.emit("n", "y")
        assert tracer.events[0].seq == first
