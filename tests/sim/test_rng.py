"""Unit tests for named reproducible random streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(5)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent(self):
        registry = RngRegistry(5)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        seq1 = [RngRegistry(9).stream("net").random() for _ in range(3)]
        seq2 = [RngRegistry(9).stream("net").random() for _ in range(3)]
        # Note: each call above creates a fresh registry, so only the first
        # draws match; compare whole sequences drawn from two registries.
        r1, r2 = RngRegistry(9), RngRegistry(9)
        assert [r1.stream("net").random() for _ in range(10)] == [
            r2.stream("net").random() for _ in range(10)
        ]
        assert seq1 == seq2

    def test_adding_a_stream_does_not_perturb_others(self):
        r1 = RngRegistry(3)
        first = [r1.stream("a").random() for _ in range(5)]
        r2 = RngRegistry(3)
        r2.stream("newcomer").random()  # extra stream consumed first
        second = [r2.stream("a").random() for _ in range(5)]
        assert first == second

    def test_fork_is_independent_and_reproducible(self):
        parent = RngRegistry(3)
        fork_a = parent.fork("child")
        fork_b = RngRegistry(3).fork("child")
        assert fork_a.master_seed == fork_b.master_seed
        assert fork_a.master_seed != parent.master_seed
