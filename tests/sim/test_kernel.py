"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.sim.kernel import Kernel, Signal


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Kernel().now == 0.0

    def test_callback_runs_at_scheduled_time(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(2.5, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [2.5]

    def test_callbacks_run_in_time_order(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(3.0, seen.append, "c")
        kernel.schedule(1.0, seen.append, "a")
        kernel.schedule(2.0, seen.append, "b")
        kernel.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        kernel = Kernel()
        seen = []
        for name in "abcde":
            kernel.schedule(1.0, seen.append, name)
        kernel.run()
        assert seen == list("abcde")

    def test_callback_args_are_passed(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(0.0, lambda a, b: seen.append((a, b)), 1, 2)
        kernel.run()
        assert seen == [(1, 2)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            Kernel().schedule(-0.1, lambda: None)

    def test_call_soon_runs_at_current_time(self):
        kernel = Kernel()
        times = []
        kernel.schedule(5.0, lambda: kernel.call_soon(lambda: times.append(kernel.now)))
        kernel.run()
        assert times == [5.0]

    def test_cancel_prevents_execution(self):
        kernel = Kernel()
        seen = []
        event = kernel.schedule(1.0, seen.append, "x")
        event.cancel()
        kernel.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        kernel = Kernel()
        event = kernel.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        kernel.run()

    def test_events_scheduled_during_run_execute(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(1.0, lambda: kernel.schedule(1.0, seen.append, "nested"))
        kernel.run()
        assert seen == ["nested"]
        assert kernel.now == 2.0


class TestRunBounds:
    def test_run_until_stops_the_clock_at_bound(self):
        kernel = Kernel()
        kernel.schedule(10.0, lambda: None)
        kernel.run(until=4.0)
        assert kernel.now == 4.0
        assert kernel.pending_count == 1

    def test_run_until_executes_events_at_exactly_the_bound(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(4.0, seen.append, "edge")
        kernel.run(until=4.0)
        assert seen == ["edge"]

    def test_run_for_is_relative(self):
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run_for(2.0)
        assert kernel.now == 2.0
        kernel.run_for(3.0)
        assert kernel.now == 5.0

    def test_run_advances_clock_to_until_even_with_empty_heap(self):
        kernel = Kernel()
        kernel.run(until=7.0)
        assert kernel.now == 7.0

    def test_max_events_bound(self):
        kernel = Kernel()
        seen = []
        for i in range(10):
            kernel.schedule(float(i), seen.append, i)
        kernel.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_run_is_not_reentrant(self):
        kernel = Kernel()

        def reenter():
            with pytest.raises(SimulationError):
                kernel.run()

        kernel.schedule(0.0, reenter)
        kernel.run()

    def test_step_returns_false_when_drained(self):
        kernel = Kernel()
        assert kernel.step() is False
        kernel.schedule(0.0, lambda: None)
        assert kernel.step() is True
        assert kernel.step() is False

    def test_events_executed_counter(self):
        kernel = Kernel()
        for _ in range(4):
            kernel.schedule(0.0, lambda: None)
        kernel.run()
        assert kernel.events_executed == 4


class TestProcesses:
    def test_process_sleeps(self):
        kernel = Kernel()
        trace = []

        def proc():
            trace.append(kernel.now)
            yield 1.5
            trace.append(kernel.now)
            yield 0.5
            trace.append(kernel.now)

        kernel.spawn(proc())
        kernel.run()
        assert trace == [0.0, 1.5, 2.0]

    def test_spawn_with_delay(self):
        kernel = Kernel()
        trace = []

        def proc():
            trace.append(kernel.now)
            yield 0.0

        kernel.spawn(proc(), delay=3.0)
        kernel.run()
        assert trace == [3.0]

    def test_process_waits_on_signal(self):
        kernel = Kernel()
        signal = Signal()
        trace = []

        def waiter():
            value = yield signal
            trace.append((kernel.now, value))

        def firer():
            yield 2.0
            signal.fire("hello")

        kernel.spawn(waiter())
        kernel.spawn(firer())
        kernel.run()
        assert trace == [(2.0, "hello")]

    def test_fired_signal_wakes_late_waiter_immediately(self):
        kernel = Kernel()
        signal = Signal()
        signal.fire(42)
        trace = []

        def waiter():
            value = yield signal
            trace.append(value)

        kernel.spawn(waiter())
        kernel.run()
        assert trace == [42]

    def test_signal_wakes_multiple_waiters(self):
        kernel = Kernel()
        signal = Signal()
        trace = []

        def waiter(name):
            value = yield signal
            trace.append((name, value))

        kernel.spawn(waiter("a"))
        kernel.spawn(waiter("b"))
        kernel.schedule(1.0, signal.fire, "v")
        kernel.run()
        assert sorted(trace) == [("a", "v"), ("b", "v")]

    def test_signal_cannot_fire_twice(self):
        signal = Signal()
        signal.fire(1)
        with pytest.raises(SimulationError):
            signal.fire(2)

    def test_signal_value_before_fire_raises(self):
        with pytest.raises(SimulationError):
            Signal().value

    def test_process_yielding_garbage_raises(self):
        kernel = Kernel()

        def proc():
            yield object()

        kernel.spawn(proc())
        with pytest.raises(SimulationError):
            kernel.run()
