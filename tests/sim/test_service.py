"""Unit tests for the FIFO CPU service station."""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.service import ServiceStation


class TestServiceStation:
    def test_zero_cost_on_idle_station_runs_immediately(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        seen = []
        station.submit(0.0, lambda: seen.append(kernel.now))
        assert seen == [0.0]  # before kernel even runs

    def test_service_time_delays_completion(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        seen = []
        station.submit(0.5, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [0.5]

    def test_fifo_order_and_serial_service(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        seen = []
        station.submit(1.0, lambda: seen.append(("a", kernel.now)))
        station.submit(2.0, lambda: seen.append(("b", kernel.now)))
        station.submit(0.5, lambda: seen.append(("c", kernel.now)))
        kernel.run()
        assert seen == [("a", 1.0), ("b", 3.0), ("c", 3.5)]

    def test_zero_cost_behind_queued_work_waits(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        seen = []
        station.submit(1.0, lambda: seen.append(("slow", kernel.now)))
        station.submit(0.0, lambda: seen.append(("fast", kernel.now)))
        kernel.run()
        assert seen == [("slow", 1.0), ("fast", 1.0)]

    def test_work_submitted_later_queues_behind_in_flight(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        seen = []
        station.submit(2.0, lambda: seen.append(("first", kernel.now)))
        kernel.schedule(1.0, lambda: station.submit(1.0, lambda: seen.append(("second", kernel.now))))
        kernel.run()
        assert seen == [("first", 2.0), ("second", 3.0)]

    def test_busy_time_accumulates(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        station.submit(1.0, lambda: None)
        station.submit(0.5, lambda: None)
        kernel.run()
        assert station.busy_time == pytest.approx(1.5)
        assert station.completed == 2

    def test_utilisation(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        station.submit(1.0, lambda: None)
        kernel.run()
        assert station.utilisation(4.0) == pytest.approx(0.25)
        assert station.utilisation(0.0) == 0.0

    def test_utilisation_capped_at_one(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        station.submit(5.0, lambda: None)
        kernel.run()
        assert station.utilisation(1.0) == 1.0

    def test_negative_service_time_rejected(self):
        station = ServiceStation(Kernel())
        with pytest.raises(ValueError):
            station.submit(-1.0, lambda: None)

    def test_queue_length(self):
        kernel = Kernel()
        station = ServiceStation(kernel)
        station.submit(1.0, lambda: None)
        station.submit(1.0, lambda: None)
        station.submit(1.0, lambda: None)
        assert station.queue_length == 2  # one in service, two waiting
        kernel.run()
        assert station.queue_length == 0
        assert not station.busy
