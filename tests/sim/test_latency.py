"""Unit tests for latency models."""

import random

import pytest

from repro.sim.latency import (
    CompositeLatency,
    ConstantLatency,
    JitteredLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return random.Random(1)


class TestConstant:
    def test_sample_is_constant(self, rng):
        model = ConstantLatency(0.01)
        assert all(model.sample("a", "b", rng) == 0.01 for _ in range(10))

    def test_expected_equals_delay(self):
        assert ConstantLatency(0.02).expected("a", "b") == 0.02

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniform:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(0.01, 0.02)
        for _ in range(100):
            assert 0.01 <= model.sample("a", "b", rng) <= 0.02

    def test_expected_is_midpoint(self):
        assert UniformLatency(0.01, 0.03).expected("a", "b") == pytest.approx(0.02)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.03, 0.01)


class TestJittered:
    def test_samples_never_below_base(self, rng):
        model = JitteredLatency(0.05, 0.01)
        assert all(model.sample("a", "b", rng) >= 0.05 for _ in range(200))

    def test_zero_jitter_is_constant(self, rng):
        model = JitteredLatency(0.05, 0.0)
        assert model.sample("a", "b", rng) == 0.05

    def test_expected_accounts_for_folded_gaussian(self):
        model = JitteredLatency(0.05, 0.01)
        expected = model.expected("a", "b")
        assert expected > 0.05
        samples = [model.sample("a", "b", random.Random(7)) for _ in range(1)]
        rng = random.Random(7)
        mean = sum(model.sample("a", "b", rng) for _ in range(20000)) / 20000
        assert mean == pytest.approx(expected, rel=0.05)
        assert samples  # silence unused warning


class TestComposite:
    def test_falls_back_to_default(self, rng):
        model = CompositeLatency(ConstantLatency(0.01))
        assert model.sample("a", "b", rng) == 0.01

    def test_per_link_override(self, rng):
        model = CompositeLatency(ConstantLatency(0.01))
        model.set_link("a", "b", ConstantLatency(0.5))
        assert model.sample("a", "b", rng) == 0.5
        assert model.sample("b", "a", rng) == 0.01  # directional

    def test_symmetric_override(self, rng):
        model = CompositeLatency(ConstantLatency(0.01))
        model.set_link_symmetric("a", "b", ConstantLatency(0.2))
        assert model.sample("a", "b", rng) == 0.2
        assert model.sample("b", "a", rng) == 0.2

    def test_expected_respects_overrides(self):
        model = CompositeLatency(ConstantLatency(0.01))
        model.set_link("x", "y", ConstantLatency(0.3))
        assert model.expected("x", "y") == 0.3
        assert model.expected("y", "x") == 0.01
