"""The package's public surface: imports, exports, version."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ names missing attribute {name}"

    def test_core_entry_points_exported(self):
        for name in (
            "build_cluster",
            "wan1_deployment",
            "wan2_deployment",
            "lan_deployment",
            "PartitionMap",
            "SdurConfig",
            "SdurClient",
            "SdurServer",
            "Read",
            "ReadMany",
            "run_experiment",
            "build_classic_dur",
        ):
            assert name in repro.__all__

    def test_quickstart_shape_from_root_imports_only(self):
        """The README's quickstart must work from top-level names."""
        deployment = repro.wan1_deployment(num_partitions=2)
        cluster = repro.build_cluster(
            deployment, repro.PartitionMap.by_index(2), repro.SdurConfig()
        )
        cluster.seed({"0/alice": 100, "1/carol": 75})
        client = cluster.add_client(region="eu")
        cluster.start()
        results = []

        def transfer(txn):
            values = yield repro.ReadMany(("0/alice", "1/carol"))
            txn.write("0/alice", values["0/alice"] - 5)
            txn.write("1/carol", values["1/carol"] + 5)

        client.execute(transfer, results.append)
        cluster.world.run_for(2.0)
        assert results and results[0].outcome is repro.Outcome.COMMIT

    def test_subpackages_importable(self):
        import repro.baseline
        import repro.checker
        import repro.consensus
        import repro.core
        import repro.experiments
        import repro.geo
        import repro.harness
        import repro.metrics
        import repro.net
        import repro.runtime
        import repro.sim
        import repro.storage
        import repro.workload
