"""Unit tests for the cluster directory."""

import pytest

from repro.core.directory import ClusterDirectory
from repro.errors import ConfigurationError
from repro.net.topology import EU, US_EAST, Topology


@pytest.fixture
def directory():
    topology = Topology()
    for name, region in [("s1", EU), ("s2", EU), ("s3", US_EAST),
                         ("s4", US_EAST), ("s5", US_EAST), ("s6", EU),
                         ("c1", EU)]:
        topology.add(name, region)
    return ClusterDirectory(
        partitions={"p0": ["s1", "s2", "s3"], "p1": ["s4", "s5", "s6"]},
        preferred={"p0": "s1", "p1": "s4"},
        topology=topology,
    )


class TestValidation:
    def test_preferred_must_replicate(self):
        with pytest.raises(ConfigurationError):
            ClusterDirectory(partitions={"p0": ["a"]}, preferred={"p0": "b"})

    def test_partition_needs_servers(self):
        with pytest.raises(ConfigurationError):
            ClusterDirectory(partitions={"p0": []}, preferred={"p0": "a"})

    def test_preferred_required(self):
        with pytest.raises(ConfigurationError):
            ClusterDirectory(partitions={"p0": ["a"]}, preferred={})

    def test_server_in_two_partitions_rejected(self):
        with pytest.raises(ConfigurationError, match="replicates both"):
            ClusterDirectory(
                partitions={"p0": ["a", "b"], "p1": ["b", "c"]},
                preferred={"p0": "a", "p1": "c"},
            )

    def test_member_absent_from_topology_rejected(self):
        topology = Topology()
        topology.add("a", EU)
        with pytest.raises(ConfigurationError, match="topology"):
            ClusterDirectory(
                partitions={"p0": ["a", "ghost"]},
                preferred={"p0": "a"},
                topology=topology,
            )

    def test_empty_topology_skips_membership_check(self):
        # Unit tests build directories without placement; only a
        # populated topology is required to cover every member.
        directory = ClusterDirectory(partitions={"p0": ["a"]}, preferred={"p0": "a"})
        assert directory.servers_of("p0") == ["a"]


class TestQueries:
    def test_servers_of(self, directory):
        assert directory.servers_of("p1") == ["s4", "s5", "s6"]
        with pytest.raises(ConfigurationError):
            directory.servers_of("p9")

    def test_all_servers_deduplicated_in_order(self, directory):
        assert directory.all_servers() == ["s1", "s2", "s3", "s4", "s5", "s6"]

    def test_partition_of_server(self, directory):
        assert directory.partition_of_server("s5") == "p1"
        with pytest.raises(ConfigurationError):
            directory.partition_of_server("zz")

    def test_servers_union(self, directory):
        assert directory.servers_union(("p0", "p1")) == [
            "s1", "s2", "s3", "s4", "s5", "s6",
        ]


class TestProximityRouting:
    def test_nearest_server_prefers_same_region(self, directory):
        # Client in EU reading p1: s6 is p1's EU replica.
        assert directory.nearest_server("p1", "c1") == "s6"

    def test_nearest_server_same_partition(self, directory):
        assert directory.nearest_server("p0", "c1") in ("s1", "s2")

    def test_ranked_servers_order(self, directory):
        ranked = directory.ranked_servers("p0", "c1")
        assert set(ranked) == {"s1", "s2", "s3"}
        assert ranked[-1] == "s3"  # the US-EAST replica is farthest

    def test_unknown_origin_falls_back_to_preferred(self, directory):
        assert directory.nearest_server("p0", "not-in-topology") == "s1"
        ranked = directory.ranked_servers("p1", "not-in-topology")
        assert ranked[0] == "s4"
        assert set(ranked) == {"s4", "s5", "s6"}
