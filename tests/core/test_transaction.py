"""Unit tests for transaction ids, digests, and projections."""

import pytest

from repro.core.transaction import Outcome, ReadsetDigest, TxnId, TxnProjection
from repro.errors import ProtocolError
from repro.net.message import roundtrip


class TestTxnId:
    def test_equality_and_hash(self):
        assert TxnId("c1", 1) == TxnId("c1", 1)
        assert TxnId("c1", 1) != TxnId("c1", 2)
        assert len({TxnId("c1", 1), TxnId("c1", 1)}) == 1

    def test_ordering(self):
        assert TxnId("c1", 1) < TxnId("c1", 2) < TxnId("c2", 0)

    def test_str(self):
        assert str(TxnId("c1", 7)) == "c1#7"

    def test_codec_roundtrip(self):
        assert roundtrip(TxnId("c1", 3)) == TxnId("c1", 3)


class TestReadsetDigest:
    def test_exact_membership(self):
        digest = ReadsetDigest.exact(["a", "b"])
        assert digest.contains_any(["b", "x"])
        assert not digest.contains_any(["x", "y"])
        assert digest.is_exact

    def test_bloom_membership_no_false_negatives(self):
        digest = ReadsetDigest.bloomed(["a", "b", "c"])
        assert digest.contains_any(["c"])
        assert not digest.is_exact

    def test_bloom_roundtrips_through_codec(self):
        digest = ReadsetDigest.bloomed(["k1", "k2"])
        decoded = roundtrip(digest)
        assert decoded.contains_any(["k1"])

    def test_must_be_exactly_one_representation(self):
        with pytest.raises(ProtocolError):
            ReadsetDigest(keys=None, bloom=None)
        with pytest.raises(ProtocolError):
            ReadsetDigest(keys=frozenset({"a"}), bloom=b"xx")

    def test_empty_exact_digest(self):
        digest = ReadsetDigest.exact(())
        assert not digest.contains_any(["anything"])
        assert not digest.contains_any([])


class TestProjection:
    def make(self, partitions=("p0",), partition="p0", ws=None):
        return TxnProjection(
            tid=TxnId("c", 1),
            partition=partition,
            readset=ReadsetDigest.exact(["k"]),
            writeset=ws or {"k": 1},
            snapshot=0,
            partitions=tuple(partitions),
            coordinator="s1",
            client="c",
        )

    def test_local_vs_global(self):
        assert self.make(partitions=("p0",)).is_local
        assert self.make(partitions=("p0", "p1")).is_global

    def test_ws_keys(self):
        assert self.make(ws={"a": 1, "b": 2}).ws_keys == frozenset({"a", "b"})

    def test_other_partitions(self):
        proj = self.make(partitions=("p0", "p1", "p2"))
        assert proj.other_partitions() == ("p1", "p2")

    def test_partition_must_be_involved(self):
        with pytest.raises(ProtocolError):
            self.make(partitions=("p1",), partition="p0")

    def test_codec_roundtrip(self):
        proj = self.make(partitions=("p0", "p1"))
        decoded = roundtrip(proj)
        assert decoded == proj
        assert decoded.is_global


class TestOutcome:
    def test_values(self):
        assert Outcome.COMMIT.value == "commit"
        assert Outcome("abort") is Outcome.ABORT
