"""Admission control (docs/PROTOCOL.md §16): units and server behavior."""

import pytest

from repro.core.config import SdurConfig
from repro.core.transaction import Outcome, TxnId
from repro.errors import ConfigurationError
from repro.overload.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)

from tests.conftest import make_cluster, run_txn, update_program


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0)
        for _ in range(3):
            bucket.try_take(0.0)
        assert not bucket.try_take(0.05)  # half a token so far
        assert bucket.try_take(0.1)

    def test_never_exceeds_capacity(self):
        bucket = TokenBucket(rate=1000.0, capacity=2.0)
        assert bucket.available(100.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestAdmissionConfigValidation:
    def test_bad_values_rejected(self):
        for kwargs in (
            {"rate": 0.0},
            {"rate": -1.0},
            {"burst": 0.0},
            {"max_inflight": 0},
            {"max_queue_depth": 0},
            {"inflight_ttl": 0.0},
        ):
            with pytest.raises(ConfigurationError):
                AdmissionConfig(**kwargs)


def tid(seq: int) -> TxnId:
    return TxnId(client="c", seq=seq)


class TestAdmissionController:
    def test_queue_bound_sheds_first(self):
        ctl = AdmissionController(AdmissionConfig(max_queue_depth=4))
        assert ctl.admit_commit(tid(1), 0.0, queue_depth=4) is AdmissionDecision.SHED_QUEUE
        assert ctl.admit_commit(tid(1), 0.0, queue_depth=3) is AdmissionDecision.ADMIT
        assert ctl.shed_queue == 1 and ctl.admitted == 1

    def test_inflight_bound_and_release(self):
        ctl = AdmissionController(AdmissionConfig(max_inflight=2))
        assert ctl.admit_commit(tid(1), 0.0, 0).admitted
        assert ctl.admit_commit(tid(2), 0.0, 0).admitted
        assert ctl.admit_commit(tid(3), 0.0, 0) is AdmissionDecision.SHED_INFLIGHT
        ctl.note_completed(tid(1))
        assert ctl.admit_commit(tid(3), 0.0, 0).admitted
        assert ctl.inflight == 2

    def test_rate_bound(self):
        ctl = AdmissionController(AdmissionConfig(rate=10.0, burst=1.0))
        assert ctl.admit_commit(tid(1), 0.0, 0).admitted
        assert ctl.admit_commit(tid(2), 0.0, 0) is AdmissionDecision.SHED_RATE
        assert ctl.admit_commit(tid(3), 0.2, 0).admitted  # 2 tokens refilled, cap 1

    def test_resubmission_of_admitted_tid_is_free(self):
        """A still-in-flight tid re-admits without a slot or token."""
        ctl = AdmissionController(AdmissionConfig(rate=10.0, burst=1.0, max_inflight=1))
        assert ctl.admit_commit(tid(1), 0.0, 0).admitted
        # Same tid: bucket empty and inflight full, yet it passes.
        assert ctl.admit_commit(tid(1), 0.0, 0).admitted
        assert ctl.inflight == 1 and ctl.shed_total == 0

    def test_inflight_ttl_leak_guard(self):
        ctl = AdmissionController(AdmissionConfig(max_inflight=1, inflight_ttl=5.0))
        assert ctl.admit_commit(tid(1), 0.0, 0).admitted
        assert ctl.admit_commit(tid(2), 1.0, 0) is AdmissionDecision.SHED_INFLIGHT
        # tid 1's coordinator never learned the outcome; the slot expires.
        assert ctl.admit_commit(tid(2), 6.0, 0).admitted

    def test_read_shedding_opt_in(self):
        ctl = AdmissionController(AdmissionConfig(max_queue_depth=4))
        assert ctl.admit_read(0.0, queue_depth=100).admitted  # off by default
        ctl2 = AdmissionController(AdmissionConfig(max_queue_depth=4, shed_reads=True))
        assert ctl2.admit_read(0.0, queue_depth=4) is AdmissionDecision.SHED_QUEUE
        assert ctl2.admit_read(0.0, queue_depth=3).admitted


class TestServerAdmission:
    def test_admission_off_counts_admits_and_never_sheds(self):
        cluster = make_cluster(1)
        client = cluster.add_client()
        cluster.start()
        result = run_txn(cluster, client, update_program(["0/x"]))
        assert result.outcome is Outcome.COMMIT
        stats = cluster.server_stats()
        session = client.config.session_server
        assert stats[session]["admitted"] >= 1
        assert all(s["shed_total"] == 0 for s in stats.values())

    def test_rate_shed_busy_reply_and_client_retry(self):
        """A shed commit is refused with Busy; the client resubmits the
        same tid after backing off and eventually commits."""
        config = SdurConfig().with_admission(
            AdmissionConfig(rate=1.0, burst=1.0, retry_after=0.05)
        )
        cluster = make_cluster(1, config=config)
        client = cluster.add_client(busy_backoff_base=0.05, backoff_jitter=0.0)
        cluster.start()
        first = run_txn(cluster, client, update_program(["0/a"]))
        assert first.committed
        # Bucket now empty (burst 1): the next commit gets shed at least
        # once, then admitted after ~1 s of refill via backoff retries.
        second = run_txn(cluster, client, update_program(["0/b"]))
        assert second.committed
        assert client.stats.busy_replies >= 1
        session = client.config.session_server
        assert cluster.server_stats()[session]["shed_total"] >= 1

    def test_shed_exhaustion_aborts_with_reason(self):
        config = SdurConfig().with_admission(AdmissionConfig(rate=0.001, burst=1.0))
        cluster = make_cluster(1, config=config)
        client = cluster.add_client(
            busy_backoff_base=0.01, backoff_cap=0.02, max_busy_retries=2
        )
        cluster.start()
        first = run_txn(cluster, client, update_program(["0/a"]))
        assert first.committed  # consumed the only token for ~17 min
        second = run_txn(cluster, client, update_program(["0/b"]))
        assert not second.committed
        assert second.abort_reason == "shed (rate)"
        assert client.stats.shed_aborts == 1

    def test_queue_depth_counters_exported(self):
        cluster = make_cluster(1)
        client = cluster.add_client()
        cluster.start()
        run_txn(cluster, client, update_program(["0/x"]))
        stats = next(iter(cluster.server_stats().values()))
        for counter in (
            "admitted",
            "shed_total",
            "queue_depth",
            "queue_depth_max",
            "stall_depth_max",
        ):
            assert counter in stats

    def test_busy_does_not_suspect_the_server(self):
        config = SdurConfig().with_admission(AdmissionConfig(rate=1.0, burst=1.0))
        cluster = make_cluster(1, config=config)
        client = cluster.add_client(busy_backoff_base=0.05, commit_timeout=5.0)
        cluster.start()
        run_txn(cluster, client, update_program(["0/a"]))
        run_txn(cluster, client, update_program(["0/b"]))
        # The busy server answered; it must not be on the suspect list.
        assert client.config.session_server not in client._suspected
