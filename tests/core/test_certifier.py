"""Unit tests for certification and the reorder-position search.

These exercise the exact tests from the paper: ``ctest`` (Algorithm 2
lines 46–47), the committed-window certification (line 49), the pending
check for globals (lines 51–52), and each of the four reorder-position
conditions (lines 55–60).
"""

import pytest

from repro.core.certifier import (
    CertificationWindow,
    CommittedRecord,
    certify_against_pending,
    ctest,
    find_reorder_position,
)
from repro.core.pending import PendingList, PendingTxn
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection


def proj(
    name: str,
    reads=(),
    writes=(),
    partitions=("p0",),
    snapshot=0,
    partition="p0",
):
    return TxnProjection(
        tid=TxnId("c", hash(name) % 10_000),
        partition=partition,
        readset=ReadsetDigest.exact(reads),
        writeset={key: 1 for key in writes},
        snapshot=snapshot,
        partitions=tuple(partitions),
        coordinator="s",
        client="c",
    )


def record(version, reads=(), writes=(), is_global=False):
    return CommittedRecord(
        tid=TxnId("c", 1000 + version),
        version=version,
        readset=ReadsetDigest.exact(reads),
        ws_keys=frozenset(writes),
        is_global=is_global,
    )


def pending_entry(p, rt=0):
    return PendingTxn(proj=p, rt=rt, delivered_at=0.0)


class TestCtest:
    def test_local_passes_when_reads_fresh(self):
        local = proj("t", reads=["x"], writes=["x"])
        assert ctest(local, ReadsetDigest.exact(["y"]), frozenset({"y"}))

    def test_local_fails_on_stale_read(self):
        local = proj("t", reads=["x"], writes=["x"])
        assert not ctest(local, ReadsetDigest.exact([]), frozenset({"x"}))

    def test_local_ignores_write_write_overlap(self):
        """Locals only need rs ∩ ws' = ∅; their writes may touch what the
        earlier transaction read (they serialize after it)."""
        local = proj("t", reads=["a"], writes=["a"])
        assert ctest(local, ReadsetDigest.exact(["a"]), frozenset({"b"}))

    def test_global_checked_both_ways(self):
        """Globals need symmetry so either delivery order serializes
        (the paper's footnote-2 scenario)."""
        global_txn = proj("t", reads=["x"], writes=["x"], partitions=("p0", "p1"))
        # Other transaction READ x, which this one writes -> fail.
        assert not ctest(global_txn, ReadsetDigest.exact(["x"]), frozenset({"y"}))
        # Disjoint in both directions -> pass.
        assert ctest(global_txn, ReadsetDigest.exact(["z"]), frozenset({"w"}))

    def test_empty_sets_never_conflict(self):
        read_only_ish = proj("t", reads=["x"], writes=[], partitions=("p0", "p1"))
        assert ctest(read_only_ish, ReadsetDigest.exact(["x"]), frozenset())


class TestCertificationWindow:
    def test_passes_when_no_overlapping_commits(self):
        window = CertificationWindow(capacity=10)
        window.add(record(1, writes=["a"]))
        txn = proj("t", reads=["b"], writes=["b"], snapshot=0)
        assert window.certify(txn) is True

    def test_only_commits_after_snapshot_are_checked(self):
        window = CertificationWindow(capacity=10)
        window.add(record(1, writes=["x"]))
        saw_it = proj("t", reads=["x"], writes=["x"], snapshot=1)
        missed_it = proj("u", reads=["x"], writes=["x"], snapshot=0)
        assert window.certify(saw_it) is True
        assert window.certify(missed_it) is False

    def test_conflict_anywhere_in_window_fails(self):
        window = CertificationWindow(capacity=10)
        for version in range(1, 6):
            window.add(record(version, writes=[f"k{version}"]))
        txn = proj("t", reads=["k3"], writes=["k3"], snapshot=1)
        assert window.certify(txn) is False

    def test_snapshot_older_than_window_is_unknowable(self):
        window = CertificationWindow(capacity=2)
        for version in range(1, 6):
            window.add(record(version, writes=["w"]))
        assert window.floor == 3
        txn = proj("t", reads=["q"], writes=["q"], snapshot=2)
        assert window.certify(txn) is None
        at_floor = proj("u", reads=["q"], writes=["q"], snapshot=3)
        assert at_floor.snapshot == window.floor
        assert window.certify(at_floor) is True

    def test_versions_must_increase(self):
        window = CertificationWindow(capacity=10)
        window.add(record(2))
        with pytest.raises(ValueError):
            window.add(record(2))

    def test_global_readset_checked_against_new_writes(self):
        window = CertificationWindow(capacity=10)
        window.add(record(1, reads=["g"], writes=[]))
        txn = proj("t", reads=["q"], writes=["g"], partitions=("p0", "p1"), snapshot=0)
        # committed read g; this global writes g -> symmetric test fails
        assert window.certify(txn) is False


class TestPendingCertification:
    def test_global_fails_against_conflicting_pending(self):
        pending = PendingList()
        pending.append(pending_entry(proj("g1", reads=["x"], writes=["x"], partitions=("p0", "p1"))))
        newcomer = proj("g2", reads=["x"], writes=["y"], partitions=("p0", "p1"))
        assert not certify_against_pending(newcomer, pending)

    def test_global_passes_against_disjoint_pending(self):
        pending = PendingList()
        pending.append(pending_entry(proj("g1", reads=["x"], writes=["x"], partitions=("p0", "p1"))))
        newcomer = proj("g2", reads=["y"], writes=["y"], partitions=("p0", "p1"))
        assert certify_against_pending(newcomer, pending)


class TestReorderPosition:
    def global_entry(self, name, reads, writes, rt):
        return pending_entry(
            proj(name, reads=reads, writes=writes, partitions=("p0", "p1")), rt=rt
        )

    def test_empty_pending_list_appends_at_zero(self):
        local = proj("t", reads=["a"], writes=["a"])
        assert find_reorder_position(local, PendingList(), delivered_count=5) == 0

    def test_leaps_compatible_global(self):
        pending = PendingList()
        pending.append(self.global_entry("g", ["x"], ["x"], rt=100))
        local = proj("t", reads=["a"], writes=["a"])
        assert find_reorder_position(local, pending, delivered_count=10) == 0

    def test_condition_a_stale_reads_forbid_any_slot(self):
        """The local read something a pending transaction writes: abort."""
        pending = PendingList()
        pending.append(self.global_entry("g", ["q"], ["x"], rt=100))
        local = proj("t", reads=["x"], writes=["x"])
        assert find_reorder_position(local, pending, delivered_count=10) is None

    def test_condition_b_never_leaps_another_local(self):
        pending = PendingList()
        pending.append(self.global_entry("g", ["x"], ["x"], rt=100))
        pending.append(pending_entry(proj("l", reads=["y"], writes=["y"]), rt=100))
        newcomer = proj("t", reads=["a"], writes=["a"])
        # Slots 0 and 1 would leap the local at position 1 -> only append.
        assert find_reorder_position(newcomer, pending, delivered_count=10) == 2

    def test_condition_c_no_leaping_past_threshold(self):
        pending = PendingList()
        pending.append(self.global_entry("g", ["x"], ["x"], rt=5))
        local = proj("t", reads=["a"], writes=["a"])
        # Delivered count has passed g's threshold: g may already have
        # completed elsewhere, so leaping would be non-deterministic.
        assert find_reorder_position(local, pending, delivered_count=6) == 1
        # At or before the threshold the leap is allowed.
        assert find_reorder_position(local, pending, delivered_count=5) == 0

    def test_condition_d_must_not_invalidate_votes(self):
        pending = PendingList()
        # Global read a; the local writes a: leaping would change g's vote.
        pending.append(self.global_entry("g", ["a"], ["x"], rt=100))
        local = proj("t", reads=["b", "a"], writes=["a"])
        # Slot 0 violates (d); slot 1 is fine since g writes x ∉ rs(t)...
        # but wait: t reads a and g writes x, so condition (a) holds at 1.
        assert find_reorder_position(local, pending, delivered_count=10) == 1

    def test_leftmost_valid_slot_is_chosen(self):
        pending = PendingList()
        pending.append(self.global_entry("g1", ["x"], ["x"], rt=100))
        pending.append(self.global_entry("g2", ["y"], ["y"], rt=100))
        local = proj("t", reads=["a"], writes=["a"])
        assert find_reorder_position(local, pending, delivered_count=10) == 0

    def test_partial_leap_over_suffix_only(self):
        pending = PendingList()
        # g1 conflicts via (d): local writes what g1 reads.
        pending.append(self.global_entry("g1", ["a"], ["x"], rt=100))
        pending.append(self.global_entry("g2", ["y"], ["y"], rt=100))
        local = proj("t", reads=["b", "a"], writes=["a"])
        assert find_reorder_position(local, pending, delivered_count=10) == 1

    def test_mixed_conditions_force_append(self):
        pending = PendingList()
        pending.append(self.global_entry("g1", ["q"], ["w"], rt=2))  # past threshold
        local = proj("t", reads=["a"], writes=["a"])
        assert find_reorder_position(local, pending, delivered_count=10) == 1
