"""Unit tests for key -> partition mapping."""

import pytest

from repro.core.partitioning import PartitionMap
from repro.errors import ConfigurationError


class TestHashed:
    def test_partition_ids(self):
        pmap = PartitionMap.hashed(3)
        assert pmap.partition_ids == ["p0", "p1", "p2"]

    def test_stable_across_instances(self):
        a = PartitionMap.hashed(4)
        b = PartitionMap.hashed(4)
        keys = [f"key{i}" for i in range(100)]
        assert [a.partition_of(k) for k in keys] == [b.partition_of(k) for k in keys]

    def test_roughly_uniform(self):
        pmap = PartitionMap.hashed(4)
        counts = {}
        for i in range(4000):
            counts[pmap.partition_of(f"key{i}")] = counts.get(pmap.partition_of(f"key{i}"), 0) + 1
        assert all(count > 500 for count in counts.values())

    def test_at_least_one_partition(self):
        with pytest.raises(ConfigurationError):
            PartitionMap(0)


class TestByIndex:
    def test_numeric_prefix_controls_placement(self):
        pmap = PartitionMap.by_index(2)
        assert pmap.partition_of("0/objA") == "p0"
        assert pmap.partition_of("1/objA") == "p1"
        assert pmap.partition_of("2/objA") == "p0"  # modulo

    def test_partitions_of_deduplicates_and_sorts(self):
        pmap = PartitionMap.by_index(3)
        assert pmap.partitions_of(["2/a", "0/b", "2/c"]) == ("p0", "p2")

    def test_bad_assignment_detected(self):
        pmap = PartitionMap(2, assign=lambda key: 7)
        with pytest.raises(ConfigurationError):
            pmap.partition_of("x")


class TestByPrefix:
    def test_same_prefix_same_partition(self):
        pmap = PartitionMap.by_prefix(4)
        assert pmap.partition_of("user42/posts") == pmap.partition_of("user42/followers")

    def test_group_by_partition(self):
        pmap = PartitionMap.by_index(2)
        grouped = pmap.group_by_partition(["0/a", "1/b", "0/c"])
        assert grouped == {"p0": ["0/a", "0/c"], "p1": ["1/b"]}

    def test_group_by_partition_with_tuples(self):
        pmap = PartitionMap.by_index(2)
        grouped = pmap.group_by_partition([("0/a", 1), ("1/b", 2)])
        assert grouped == {"p0": [("0/a", 1)], "p1": [("1/b", 2)]}
