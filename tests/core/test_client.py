"""Unit tests for the client protocol core (Algorithm 1).

These run against a real (small) simulated cluster — the client is a
protocol core, so exercising it without servers would test nothing — but
each test targets one client-side behaviour.
"""

import pytest

from repro.core.client import Read, ReadMany
from repro.core.transaction import Outcome
from repro.errors import ProtocolError
from tests.conftest import make_cluster, run_txn, update_program


@pytest.fixture
def cluster():
    cluster = make_cluster(num_partitions=2)
    cluster.seed({"0/a": 10, "0/b": 20, "1/c": 30})
    return cluster


@pytest.fixture
def client(cluster):
    client = cluster.add_client()
    cluster.start()
    cluster.world.run_for(0.5)
    return client


class TestReads:
    def test_single_read(self, cluster, client):
        seen = {}

        def program(txn):
            seen["a"] = yield Read("0/a")

        result = run_txn(cluster, client, program, read_only=True)
        assert result.committed
        assert seen["a"] == 10

    def test_read_many_parallel(self, cluster, client):
        seen = {}

        def program(txn):
            values = yield ReadMany(("0/a", "0/b"))
            seen.update(values)

        run_txn(cluster, client, program, read_only=True)
        assert seen == {"0/a": 10, "0/b": 20}

    def test_read_many_deduplicates(self, cluster, client):
        def program(txn):
            values = yield ReadMany(("0/a", "0/a", "0/b"))
            assert set(values) == {"0/a", "0/b"}

        assert run_txn(cluster, client, program, read_only=True).committed

    def test_read_your_own_write_from_buffer(self, cluster, client):
        observed = {}

        def program(txn):
            value = yield Read("0/a")
            txn.write("0/a", value + 5)
            observed["reread"] = yield Read("0/a")  # from the local buffer
            txn.write("0/a", observed["reread"] + 5)

        result = run_txn(cluster, client, program)
        assert result.committed
        assert observed["reread"] == 15
        assert result.writes["0/a"] == 20

    def test_unknown_key_reads_as_none(self, cluster, client):
        seen = {}

        def program(txn):
            seen["v"] = yield Read("0/never-written")

        run_txn(cluster, client, program, read_only=True)
        assert seen["v"] is None

    def test_snapshot_pinned_by_first_read(self, cluster, client):
        """All reads of a partition see one consistent snapshot even if
        commits land between them."""
        other = cluster.clients  # noqa: F841 - doc only

        def program(txn):
            a = yield Read("0/a")
            # A concurrent writer commits between our reads:
            writer_done = []
            writer = cluster.add_client()
            writer.execute(update_program(["0/a", "0/b"]), writer_done.append)
            # drive until the writer commits
            while not writer_done:
                cluster.world.kernel.step()
            b = yield Read("0/b")
            assert (a, b) == (10, 20), "snapshot must not move mid-transaction"

        result = run_txn(cluster, client, program, read_only=True)
        assert result.committed


class TestWrites:
    def test_blind_write_rejected(self, cluster, client):
        def program(txn):
            txn.write("0/a", 99)
            yield Read("0/b")

        with pytest.raises(ProtocolError, match="blind write"):
            run_txn(cluster, client, program)

    def test_write_in_read_only_txn_rejected(self, cluster, client):
        def program(txn):
            value = yield Read("0/a")
            txn.write("0/a", value)

        with pytest.raises(ProtocolError, match="read-only"):
            run_txn(cluster, client, program, read_only=True)

    def test_blind_writes_allowed_when_disabled(self, cluster):
        client = cluster.add_client(enforce_no_blind_writes=False)
        cluster.start()
        cluster.world.run_for(0.5)

        def program(txn):
            yield Read("0/a")  # establishes the p0 snapshot
            txn.write("0/a", 1)
            txn.write("0/b", 2)  # blind, but allowed now

        assert run_txn(cluster, client, program).committed


class TestTermination:
    def test_update_commits_and_applies(self, cluster, client):
        result = run_txn(cluster, client, update_program(["0/a"]))
        assert result.outcome is Outcome.COMMIT
        store = cluster.servers["s1"].server.store
        assert store.read_latest("0/a").value == 11

    def test_pure_read_commits_without_termination_messages(self, cluster, client):
        sent_before = cluster.world.network.messages_sent

        def program(txn):
            yield Read("0/a")

        result = run_txn(cluster, client, program, read_only=True)
        assert result.committed
        sent = cluster.world.network.messages_sent - sent_before
        assert sent <= 4  # request + response (+ routing slack); no broadcast

    def test_global_transaction_spans_partitions(self, cluster, client):
        result = run_txn(cluster, client, update_program(["0/a", "1/c"]))
        assert result.committed
        assert result.is_global
        assert result.partitions == ("p0", "p1")
        assert cluster.servers["s4"].server.store.read_latest("1/c").value == 31

    def test_result_records_read_versions(self, cluster, client):
        run_txn(cluster, client, update_program(["0/a"]))
        result = run_txn(cluster, client, update_program(["0/a"]))
        assert result.read_versions["0/a"] >= 1  # saw the first commit

    def test_labels_propagate(self, cluster, client):
        result = run_txn(cluster, client, update_program(["0/a"]), label="mine")
        assert result.label == "mine"

    def test_sequential_tids_unique(self, cluster, client):
        r1 = run_txn(cluster, client, update_program(["0/a"]))
        r2 = run_txn(cluster, client, update_program(["0/a"]))
        assert r1.tid != r2.tid
        assert r2.tid.seq > r1.tid.seq
