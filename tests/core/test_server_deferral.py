"""Direct tests of the deterministic-certification machinery.

These drive one SdurServer by hand — crafted deliveries and votes, no
Paxos, no client — to pin down the exact semantics of the snapshot gate,
deferred verdicts, dooming, and dependency resolution (the protocol
corrections documented in DESIGN.md).
"""

from repro.core.config import SdurConfig, TerminationMode
from repro.core.directory import ClusterDirectory
from repro.core.messages import OutcomeNotice, Vote
from repro.core.partitioning import PartitionMap
from repro.core.server import SdurServer
from repro.core.transaction import Outcome, ReadsetDigest, TxnId, TxnProjection
from repro.net.topology import US_EAST, Topology
from repro.runtime.sim import SimWorld


class FakeFabric:
    """Captures abcasts instead of running consensus."""

    def __init__(self):
        self.broadcasts = []

    def abcast(self, partition, value):
        self.broadcasts.append((partition, value))


def make_server(world=None):
    world = world or SimWorld(seed=1)
    topology = Topology()
    for name in ("s1", "s2", "q1", "q2", "client"):
        topology.add(name, US_EAST)
    directory = ClusterDirectory(
        partitions={"p0": ["s1", "s2"], "p1": ["q1", "q2"]},
        preferred={"p0": "s1", "p1": "q1"},
        topology=topology,
    )
    runtime = world.runtime_for("s1")
    sent = []
    # Dumb sinks for everything s1 sends.
    for name in ("s2", "q1", "q2", "client"):
        world.network.register(name, lambda src, msg, n=name: sent.append((n, msg)))
    server = SdurServer(
        runtime=runtime,
        partition="p0",
        directory=directory,
        partition_map=PartitionMap.by_index(2),
        fabric=FakeFabric(),
        # Optimistic termination: these tests pin the seed's arrival-time
        # vote semantics (votes below act the moment handle() sees them).
        # Ledger-mode semantics are covered by tests/core/test_vote_ledger.py.
        config=SdurConfig(
            vote_timeout=None,
            gossip_interval=None,
            termination_mode=TerminationMode.OPTIMISTIC,
        ),
    )
    runtime.listen(server.handle)
    return world, server, sent


def proj(seq, reads, writes, partitions=("p0", "p1"), snapshot=0, client="client"):
    return TxnProjection(
        tid=TxnId("c", seq),
        partition="p0",
        readset=ReadsetDigest.exact(reads),
        writeset={k: seq for k in writes},
        snapshot=snapshot,
        partitions=tuple(partitions),
        coordinator="s1",
        client=client,
    )


def votes_sent(sent, seq):
    return [
        (node, msg)
        for node, msg in sent
        if isinstance(msg, Vote) and msg.tid == TxnId("c", seq)
    ]


def outcome_of(sent, seq):
    for node, msg in sent:
        if isinstance(msg, OutcomeNotice) and msg.tid == TxnId("c", seq):
            return msg.outcome
    return None


class TestDeferral:
    def test_conflicting_global_defers_its_vote(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.1)
        assert votes_sent(sent, 1), "first global votes immediately"
        # g2 writes what g1 read: symmetric conflict -> defer, no vote yet.
        server.on_adeliver(1, proj(2, reads=["a", "b"], writes=["b"], snapshot=0))
        world.run_for(0.1)
        assert not votes_sent(sent, 2)
        assert server.stats.deferred == 1
        entry = server.pending.get(TxnId("c", 2))
        assert entry.deps == {TxnId("c", 1)}

    def test_dep_abort_releases_commit_vote(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.on_adeliver(1, proj(2, reads=["a", "b"], writes=["b"]))
        world.run_for(0.1)
        # p1 votes abort for g1: g1 aborts, the dependency evaporates.
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="abort"))
        world.run_for(0.1)
        assert outcome_of(sent, 1) == "abort"
        g2_votes = votes_sent(sent, 2)
        assert g2_votes and all(m.vote == "commit" for _, m in g2_votes)

    def test_dep_commit_dooms_dependent(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.on_adeliver(1, proj(2, reads=["a", "b"], writes=["b"]))
        world.run_for(0.1)
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.1)
        assert outcome_of(sent, 1) == "commit"
        g2_votes = votes_sent(sent, 2)
        assert g2_votes and all(m.vote == "abort" for _, m in g2_votes)
        # g2 was doomed and, being the new head with a known outcome,
        # completed as an abort without waiting for remote votes.
        assert TxnId("c", 2) not in server.pending
        assert outcome_of(sent, 2) == "abort"
        assert server.sc == 1  # only g1 applied

    def test_doom_cascades_through_chains(self):
        """g1 commits -> g2 (reads g1's write) doomed -> g3 (deferred on
        g2) is released with a commit vote, because its only conflict was
        with a transaction that will never apply."""
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.on_adeliver(1, proj(2, reads=["a", "b"], writes=["b"]))
        server.on_adeliver(2, proj(3, reads=["b", "c"], writes=["c"]))
        world.run_for(0.1)
        assert server.stats.deferred == 2
        assert not votes_sent(sent, 3)
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.1)
        assert [m.vote for _, m in votes_sent(sent, 2)] and all(
            m.vote == "abort" for _, m in votes_sent(sent, 2)
        )
        g3_votes = votes_sent(sent, 3)
        assert g3_votes and all(m.vote == "commit" for _, m in g3_votes)

    def test_deferred_local_appends_no_leap(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        # A local that read what the pending global wrote: deferred.
        server.on_adeliver(1, proj(2, reads=["a", "z"], writes=["z"], partitions=("p0",)))
        world.run_for(0.1)
        assert server.pending.position_of(TxnId("c", 2)) == 1
        # g1 aborts -> the local commits.
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="abort"))
        world.run_for(0.1)
        assert outcome_of(sent, 2) == "commit"
        assert server.store.read_latest("z").value == 2


class TestSnapshotGate:
    def test_future_snapshot_stalls_delivery_until_sc_catches_up(self):
        world, server, sent = make_server()
        # Pending global g1 holds SC at 0.
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        # t2 was read at another replica that already applied g1: its
        # snapshot (1) is ahead of this replica.
        server.on_adeliver(
            1, proj(2, reads=["b"], writes=["b"], partitions=("p0",), snapshot=1)
        )
        world.run_for(0.1)
        assert len(server._stalled) == 1
        assert server.dc == 1  # t2 not yet counted
        # g1 commits -> SC reaches 1 -> the gate opens.
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.1)
        assert server.sc == 2
        assert outcome_of(sent, 2) == "commit"
        assert not server._stalled

    def test_gate_preserves_delivery_order(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.on_adeliver(
            1, proj(2, reads=["b"], writes=["b"], partitions=("p0",), snapshot=1)
        )
        # A third delivery with a satisfied snapshot still queues behind.
        server.on_adeliver(
            2, proj(3, reads=["c"], writes=["c"], partitions=("p0",), snapshot=0)
        )
        world.run_for(0.1)
        assert len(server._stalled) == 2
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.1)
        # Commit versions follow delivery order: g1=1, t2=2, t3=3.
        assert server.store.read_latest("b").version == 2
        assert server.store.read_latest("c").version == 3


class TestVoteBuffering:
    def test_early_votes_apply_on_delivery(self):
        world, server, sent = make_server()
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.1)
        assert outcome_of(sent, 1) == "commit"

    def test_early_votes_for_deferred_txn_apply_at_decision(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        # p1's commit vote for g2 arrives before g2 is even decided here.
        server.handle("q1", Vote(tid=TxnId("c", 2), partition="p1", vote="commit"))
        server.on_adeliver(1, proj(2, reads=["a", "b"], writes=["b"]))
        world.run_for(0.1)
        assert not votes_sent(sent, 2)  # still deferred
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="abort"))
        world.run_for(0.1)
        assert outcome_of(sent, 2) == "commit"
