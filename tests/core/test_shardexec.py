"""Unit tests for the sharded certification executor (``repro.core.shardexec``).

Targeted histories pinning: shard routing stability, the fanout's
slicing of committed records (exact and bloom readsets), verdict
equivalence between :class:`ShardedCertifier` and the unsharded
:class:`IndexedCertifier` on every query type, phase-1 batch plans, the
POOL backend's determinism and thread lifecycle, and checkpoint/restore
rebuilds through a live server.  The Hypothesis differential suite
(``tests/properties/test_prop_shardexec.py``) covers random delivery
scripts end to end.
"""

import threading

import pytest

from repro.core.batch import BatchingConfig
from repro.core.certifier import CertificationWindow, CommittedRecord
from repro.core.certindex import IndexedCertifier
from repro.core.config import CertExecutorMode, CertifierMode, SdurConfig
from repro.core.pending import PendingList, PendingTxn
from repro.core.shardexec import (
    InprocShardExecutor,
    PooledShardExecutor,
    ShardBackend,
    ShardExecConfig,
    ShardedCertifier,
    make_shard_executor,
    shard_of,
)
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection
from repro.errors import ConfigurationError

from tests.properties.test_prop_shardexec import (
    build_server,
    concretize,
    replay,
    state_of,
)


def proj(seq, reads=(), writes=(), partitions=("p0",), snapshot=0, bloom=False):
    readset = ReadsetDigest.bloomed(reads) if bloom else ReadsetDigest.exact(reads)
    return TxnProjection(
        tid=TxnId("c", seq),
        partition="p0",
        readset=readset,
        writeset={key: seq for key in writes},
        snapshot=snapshot,
        partitions=tuple(partitions),
        coordinator="s",
        client="c",
    )


def record(version, reads=(), writes=(), is_global=False, bloom=False):
    readset = ReadsetDigest.bloomed(reads) if bloom else ReadsetDigest.exact(reads)
    return CommittedRecord(
        tid=TxnId("c", 1000 + version),
        version=version,
        readset=readset,
        ws_keys=frozenset(writes),
        is_global=is_global,
    )


def sharded(num_shards=4, capacity=64, backend=ShardBackend.INPROC, hash_seed=0):
    config = ShardExecConfig(
        num_shards=num_shards, backend=backend, hash_seed=hash_seed
    )
    window = CertificationWindow(capacity)
    pending = PendingList()
    certifier = ShardedCertifier(
        window, pending, config=config, executor=make_shard_executor(config)
    )
    return certifier, window, pending


#: A history mixing exact and bloom readsets, locals and globals, with
#: enough records to straddle a small window's evictions.
def fill(window, capacity_stress=False):
    histories = [
        record(1, reads=["a"], writes=["x", "y"]),
        record(2, reads=["b", "c"], writes=["z"], is_global=True),
        record(3, reads=["x"], writes=["a"], bloom=True, is_global=True),
        record(4, reads=["d"], writes=["b"]),
        record(5, reads=["y", "z"], writes=["c"], bloom=True),
        record(6, reads=["e"], writes=["d", "e"], is_global=True),
    ]
    if capacity_stress:
        histories += [
            record(7 + i, reads=[f"k{i}"], writes=[f"w{i % 3}"]) for i in range(8)
        ]
    for rec in histories:
        window.add(rec)


QUERIES = [
    dict(reads=["x"], writes=["q"], snapshot=0),
    dict(reads=["q"], writes=["x"], snapshot=0),
    dict(reads=["a"], writes=["b"], partitions=("p0", "p1"), snapshot=0),
    dict(reads=["q"], writes=["x"], partitions=("p0", "p1"), snapshot=2),
    dict(reads=["q"], writes=["y", "z"], partitions=("p0", "p1"), snapshot=1),
    dict(reads=["x", "y"], writes=["c"], snapshot=4),
    dict(reads=["m"], writes=["n"], snapshot=6),
    dict(reads=["a", "b", "c"], writes=[], snapshot=0, bloom=True),
    dict(reads=["nope"], writes=[], snapshot=0, bloom=True),
    dict(reads=["q"], writes=["e"], partitions=("p0", "p1"), snapshot=3),
    dict(reads=["q"], writes=["z"], partitions=("p0", "p1"), snapshot=0, bloom=True),
]


class TestConfig:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardExecConfig(num_shards=0)

    def test_rejects_bad_pool_workers(self):
        with pytest.raises(ConfigurationError):
            ShardExecConfig(pool_workers=0)

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            ShardExecConfig(hash_seed=-1)

    def test_sharded_requires_indexed_certifier(self):
        with pytest.raises(ConfigurationError):
            SdurConfig(
                certifier=CertifierMode.SCAN,
                cert_executor=CertExecutorMode.SHARDED,
            )

    def test_with_shard_executor_helper(self):
        config = SdurConfig().with_shard_executor(ShardExecConfig(num_shards=8))
        assert config.cert_executor is CertExecutorMode.SHARDED
        assert config.shardexec.num_shards == 8


class TestShardOf:
    def test_stable_and_in_range(self):
        for key in ("a", "0/k3", "user:42", ""):
            for num in (1, 2, 7, 64):
                first = shard_of(key, num)
                assert 0 <= first < num
                assert shard_of(key, num) == first  # process-independent CRC

    def test_seed_changes_placement(self):
        keys = [f"k{i}" for i in range(64)]
        assert [shard_of(k, 8, 0) for k in keys] != [shard_of(k, 8, 5) for k in keys]

    def test_covers_all_shards(self):
        hit = {shard_of(f"k{i}", 4) for i in range(100)}
        assert hit == {0, 1, 2, 3}


class TestVerdictEquivalence:
    """ShardedCertifier ≡ IndexedCertifier on every query, shard count,
    and seed — including bloom records owned by one shard and probed
    with write keys that hash elsewhere (the cross-shard case)."""

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7, 64])
    @pytest.mark.parametrize("hash_seed", [0, 17])
    @pytest.mark.parametrize("capacity_stress", [False, True])
    def test_certify_matches(self, num_shards, hash_seed, capacity_stress):
        capacity = 6 if capacity_stress else 64
        ref_window = CertificationWindow(capacity)
        reference = IndexedCertifier(ref_window, PendingList())
        certifier, window, _pending = sharded(
            num_shards, capacity=capacity, hash_seed=hash_seed
        )
        fill(ref_window, capacity_stress)
        fill(window, capacity_stress)
        for seq, kwargs in enumerate(QUERIES):
            txn = proj(seq, **kwargs)
            assert certifier.certify(txn) == reference.certify(txn), kwargs

    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_pending_queries_match(self, num_shards):
        ref = IndexedCertifier(CertificationWindow(64), PendingList())
        certifier, _window, pending = sharded(num_shards)
        entries = [
            proj(100, reads=["a"], writes=["x"], partitions=("p0", "p1")),
            proj(101, reads=["y"], writes=["b"], bloom=True, partitions=("p0", "p1")),
            proj(102, reads=["c"], writes=["c"]),
        ]
        for p in entries:
            entry = PendingTxn(proj=p, rt=0, delivered_at=0.0)
            ref.pending.append(entry)
            pending.append(entry)
        for seq, kwargs in enumerate(QUERIES):
            txn = proj(200 + seq, **kwargs)
            assert certifier.outcome_conflicts(txn) == ref.outcome_conflicts(txn)
            assert certifier.find_reorder_position(txn, 5) == ref.find_reorder_position(
                txn, 5
            )

    @pytest.mark.parametrize("num_shards", [2, 7])
    def test_precertify_batch_matches_single_certify(self, num_shards):
        """Phase 1's conflict vector over a static window must equal the
        per-transaction verdicts (no in-batch effects here)."""
        certifier, window, _pending = sharded(num_shards)
        fill(window)
        projs = [proj(seq, **kwargs) for seq, kwargs in enumerate(QUERIES)]
        plan = certifier.precertify_batch(projs)
        for txn, conflict in zip(projs, plan.conflicts):
            assert conflict is (certifier.certify(txn) is False)
        assert plan.total_units == sum(plan.shard_units)
        assert plan.total_units > 0


class TestEvictionSlicing:
    def test_bloom_record_retires_with_its_shard(self):
        """A bloom digest is owned by shard version % N and must be
        popped there — and only there — when its record is evicted."""
        certifier, window, _pending = sharded(4, capacity=3)
        for version in range(1, 8):
            window.add(record(version, reads=[f"r{version}"], writes=[f"w{version}"], bloom=True))
        live = {version % 4 for version in range(5, 8)}  # capacity 3: 5..7 live
        for shard_id, shard in enumerate(certifier.shards):
            assert shard.has_bloom_records() == (shard_id in live)

    def test_floor_masks_evicted_state(self):
        certifier, window, _pending = sharded(2, capacity=2)
        fill(window)  # 6 records through a 2-slot window: floor = 4
        assert certifier.certify(proj(1, reads=["x"], snapshot=window.floor - 1)) is None
        assert certifier.certify(proj(2, reads=["q"], snapshot=window.floor)) in (
            True,
            False,
        )


class TestBackends:
    def test_make_shard_executor(self):
        assert isinstance(
            make_shard_executor(ShardExecConfig()), InprocShardExecutor
        )
        pool = make_shard_executor(ShardExecConfig(backend=ShardBackend.POOL))
        assert isinstance(pool, PooledShardExecutor)
        pool.shutdown()

    def test_pool_matches_inproc_verdicts(self):
        inproc, window_a, _ = sharded(4)
        pooled, window_b, _ = sharded(4, backend=ShardBackend.POOL)
        fill(window_a)
        fill(window_b)
        try:
            projs = [proj(seq, **kwargs) for seq, kwargs in enumerate(QUERIES)]
            assert (
                pooled.precertify_batch(projs).conflicts
                == inproc.precertify_batch(projs).conflicts
            )
        finally:
            pooled.executor.shutdown()

    def test_pool_is_lazy_and_joins_on_shutdown(self):
        pool = PooledShardExecutor()
        assert pool._pool is None  # nothing spawned until first map
        pool.drain()  # no-op before the pool exists
        assert pool.map(lambda s: s * s, 4) == [0, 1, 4, 9]
        assert any(t.name.startswith("shardexec") for t in threading.enumerate())
        pool.drain()
        pool.shutdown()
        pool.shutdown()  # idempotent
        assert not any(
            t.name.startswith("shardexec") for t in threading.enumerate()
        )


class TestServerIntegration:
    def test_checkpoint_restore_rebuilds_shards(self):
        """Shard indices carry no checkpoint state: a restore rebuilds
        them from the window, and the restored server's trajectory stays
        bit-identical to a restored serial server's."""
        shardexec = ShardExecConfig(num_shards=4)
        batching = BatchingConfig(max_batch=4)
        warmup = concretize(
            [("txn", False, False, [i % 6], [(i + 1) % 6], 0) for i in range(10)]
        )
        tail = concretize(
            [("txn", False, bool(i % 2), [i % 6], [(i + 2) % 6], i % 8) for i in range(12)]
        )

        def run(shard_config):
            first = replay(warmup, shard_config, batching, set(), 0)
            checkpoint = first.take_checkpoint()
            first.close()
            second = build_server(shard_config, batching, 0)
            second.restore_checkpoint(checkpoint)
            for instance, value in enumerate(tail):
                second.on_adeliver(len(warmup) + instance, value)
            second.flush_batches()
            return second

        serial = run(None)
        restored = run(shardexec)
        assert state_of(restored) == state_of(serial)
        assert isinstance(restored.certifier, ShardedCertifier)
        assert restored.stats.shard_certify_calls > 0

    def test_checkpoint_drains_pool(self):
        config = ShardExecConfig(num_shards=2, backend=ShardBackend.POOL)
        values = concretize(
            [("txn", False, False, [0], [1], 0), ("txn", False, False, [2], [3], 0)]
        )
        server = replay(values, config, BatchingConfig(max_batch=2), set(), 0)
        try:
            assert server.stats.committed_local == 2
            server.take_checkpoint()  # must drain, not deadlock or raise
        finally:
            server.close()
        assert not any(
            t.name.startswith("shardexec") for t in threading.enumerate()
        )

    def test_serial_server_close_is_noop(self):
        server = build_server(None, None, 0)
        server.close()
        server.close()
