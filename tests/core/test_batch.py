"""Unit tests of the batched delivery pipeline (docs/PROTOCOL.md §18)."""

import pytest

from repro.core.batch import BatchingConfig, DeliveryBatcher
from repro.core.config import SdurConfig
from repro.core.transaction import Outcome
from repro.errors import ConfigurationError
from tests.conftest import make_cluster, run_txn, update_program


class TestBatchingConfig:
    def test_defaults_are_valid(self):
        config = BatchingConfig()
        assert config.max_batch >= 1
        assert config.max_wait >= 0
        assert config.ledger_group >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_batch": -3},
            {"max_wait": -0.001},
            {"ledger_group": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchingConfig(**kwargs)


class ManualTimer:
    """Injected set_timer capturing callbacks for hand-driven firing."""

    def __init__(self):
        self.armed: list[tuple[float, object]] = []

    def __call__(self, delay, callback):
        self.armed.append((delay, callback))
        return self

    def fire_all(self):
        armed, self.armed = self.armed, []
        for _, callback in armed:
            callback()


class TestDeliveryBatcher:
    def make(self, **kwargs):
        flushed = []
        timer = ManualTimer()
        batcher = DeliveryBatcher(
            BatchingConfig(**kwargs), flush=flushed.append, set_timer=timer
        )
        return batcher, flushed, timer

    def test_size_trigger_flushes_exactly_at_max_batch(self):
        batcher, flushed, _ = self.make(max_batch=3)
        batcher.add("a", 1.0)
        batcher.add("b", 2.0)
        assert flushed == [] and len(batcher) == 2
        batcher.add("c", 3.0)
        assert flushed == [[("a", 1.0), ("b", 2.0), ("c", 3.0)]]
        assert len(batcher) == 0
        assert batcher.flushed_by_size == 1
        assert batcher.flushed_by_timer == 0

    def test_time_trigger_flushes_partial_batch(self):
        batcher, flushed, timer = self.make(max_batch=100, max_wait=0.005)
        batcher.add("a", 0.0)
        batcher.add("b", 0.0)
        assert flushed == []
        assert len(timer.armed) == 1  # armed once, not per add
        assert timer.armed[0][0] == 0.005
        timer.fire_all()
        assert flushed == [[("a", 0.0), ("b", 0.0)]]
        assert batcher.flushed_by_timer == 1

    def test_timer_fire_on_empty_buffer_is_noop(self):
        batcher, flushed, timer = self.make(max_batch=2)
        batcher.add("a", 0.0)
        batcher.add("b", 0.0)  # size flush; the armed timer is now stale
        timer.fire_all()
        assert flushed == [[("a", 0.0), ("b", 0.0)]]
        assert batcher.flushed_by_timer == 0

    def test_timer_rearms_for_the_next_window(self):
        batcher, flushed, timer = self.make(max_batch=100)
        batcher.add("a", 0.0)
        timer.fire_all()
        batcher.add("b", 0.0)
        assert len(timer.armed) == 1  # a fresh window arms a fresh timer
        timer.fire_all()
        assert flushed == [[("a", 0.0)], [("b", 0.0)]]

    def test_flush_now_forces_partial_batch_out(self):
        batcher, flushed, _ = self.make(max_batch=100)
        batcher.flush_now()  # empty: no flush call
        assert flushed == []
        batcher.add("a", 0.0)
        batcher.flush_now()
        assert flushed == [[("a", 0.0)]]


def batching_cluster(batching: BatchingConfig, num_partitions=2):
    cluster = make_cluster(
        num_partitions=num_partitions,
        config=SdurConfig(batching=batching),
    )
    cluster.seed({f"{p}/k{i}": 0 for p in range(num_partitions) for i in range(5)})
    client = cluster.add_client()
    cluster.start()
    cluster.world.run_for(0.5)
    return cluster, client


class TestBatchedCluster:
    def test_local_commits_flow_through_batches(self):
        cluster, client = batching_cluster(BatchingConfig(max_wait=0.002))
        for _ in range(3):
            result = run_txn(cluster, client, update_program(["0/k0"]))
            assert result.outcome is Outcome.COMMIT
        cluster.world.run_for(0.5)
        server = cluster.servers["s1"].server
        assert server.sc == 3
        assert server.stats.batches_delivered >= 1
        assert server.stats.batch_size_max >= 1
        assert server.stats.batch_certify_ns > 0
        stats = cluster.server_stats()["s1"]
        for counter in (
            "batches_delivered",
            "batch_size_max",
            "batch_certify_ns",
            "codec_bytes_saved",
        ):
            assert counter in stats

    def test_global_transactions_terminate_under_batching(self):
        cluster, client = batching_cluster(
            BatchingConfig(max_wait=0.002, ledger_group=4)
        )
        result = run_txn(cluster, client, update_program(["0/k0", "1/k0"]))
        assert result.outcome is Outcome.COMMIT
        cluster.world.run_for(1.0)
        assert cluster.servers["s1"].server.sc == 1
        assert cluster.servers["s4"].server.sc == 1

    def test_conflicting_transactions_still_abort(self):
        cluster, client = batching_cluster(BatchingConfig(max_wait=0.002))
        client2 = cluster.add_client()
        done = []
        client.execute(update_program(["0/k0", "0/k1"]), done.append)
        client2.execute(update_program(["0/k0", "0/k1"]), done.append)
        cluster.world.run_for(2.0)
        assert sorted(r.outcome.value for r in done) == ["abort", "commit"]

    def test_codec_savings_counter_accumulates_when_enabled(self):
        cluster, client = batching_cluster(
            BatchingConfig(max_wait=0.002, measure_codec_savings=True)
        )
        for _ in range(2):
            run_txn(cluster, client, update_program(["0/k0"]))
        cluster.world.run_for(0.5)
        assert cluster.servers["s1"].server.stats.codec_bytes_saved > 0

    def test_checkpoint_quiescence_waits_for_buffered_deliveries(self):
        # A batcher holding undelivered values must block quiescence:
        # a checkpoint taken now would claim coverage through
        # _last_instance without their state.
        cluster, client = batching_cluster(BatchingConfig(max_wait=5.0))
        server = cluster.servers["s1"].server
        assert server._quiescent()
        server.batcher.add("sentinel", 0.0)
        assert not server._quiescent()
        server.batcher._buffer.clear()
        assert server._quiescent()
