"""Unit tests for configuration objects."""

import pytest

from repro.core.config import DelayMode, SdurConfig, ServiceCosts


class TestSdurConfig:
    def test_defaults_are_baseline_sdur(self):
        config = SdurConfig()
        assert config.reorder_threshold == 0
        assert config.delay_mode is DelayMode.OFF
        assert not config.bloom_readsets
        assert config.store_gc_interval is None

    def test_with_reordering_copies(self):
        base = SdurConfig()
        tuned = base.with_reordering(16)
        assert tuned.reorder_threshold == 16
        assert base.reorder_threshold == 0
        assert tuned.history_window == base.history_window

    def test_with_delaying_copies(self):
        tuned = SdurConfig().with_delaying(DelayMode.FIXED, fixed=0.02)
        assert tuned.delay_mode is DelayMode.FIXED
        assert tuned.delay_fixed == 0.02

    def test_frozen(self):
        with pytest.raises(Exception):
            SdurConfig().reorder_threshold = 5  # type: ignore[misc]


class TestServiceCosts:
    def test_any_nonzero(self):
        assert not ServiceCosts().any_nonzero
        assert ServiceCosts(read=0.001).any_nonzero
        assert ServiceCosts(apply=0.001).any_nonzero


class TestDelayMode:
    def test_values(self):
        assert DelayMode("off") is DelayMode.OFF
        assert DelayMode("auto") is DelayMode.AUTO
        assert DelayMode("fixed") is DelayMode.FIXED
