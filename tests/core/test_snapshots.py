"""Unit + property tests for the globally-consistent snapshot builder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import CommitGossip
from repro.core.snapshots import GlobalSnapshotBuilder
from repro.core.transaction import TxnId
from repro.errors import ConfigurationError


def tid(n):
    return TxnId("c", n)


@pytest.fixture
def builder():
    return GlobalSnapshotBuilder(["p0", "p1"], "p0")


class TestBasics:
    def test_own_partition_must_be_listed(self):
        with pytest.raises(ConfigurationError):
            GlobalSnapshotBuilder(["p0"], "p9")

    def test_initial_vector_is_zero(self, builder):
        assert builder.vector() == {"p0": 0, "p1": 0}

    def test_local_commits_advance_own_entry(self, builder):
        builder.on_local_commit(tid(1), 1, ("p0",), is_global=False)
        builder.on_local_commit(tid(2), 2, ("p0",), is_global=False)
        assert builder.vector() == {"p0": 2, "p1": 0}

    def test_gossip_advances_remote_entry(self, builder):
        builder.on_gossip(CommitGossip(partition="p1", sc=7))
        assert builder.vector() == {"p0": 0, "p1": 7}

    def test_gossip_for_unknown_partition_ignored(self, builder):
        builder.on_gossip(CommitGossip(partition="p9", sc=5))
        assert builder.vector() == {"p0": 0, "p1": 0}

    def test_unknown_partition_gossip_replayed_on_register(self, builder):
        """Gossip racing a split's directory change is buffered, not lost:
        registering the partition replays it so the frontier catches up
        without waiting out another gossip interval."""
        builder.on_gossip(
            CommitGossip(
                partition="p9", sc=5, globals_committed=((tid(3), 4, ("p1", "p9")),)
            )
        )
        builder.on_gossip(
            CommitGossip(
                partition="p1", sc=7, globals_committed=((tid(3), 6, ("p1", "p9")),)
            )
        )
        builder.add_partition("p9")
        vector = builder.vector()
        assert vector["p9"] == 5
        assert vector["p1"] == 7  # the shared global is fully visible

    def test_pending_gossip_buffer_is_bounded(self):
        builder = GlobalSnapshotBuilder(["p0", "p1"], "p0", history=4)
        for sc in range(1, 10):
            builder.on_gossip(CommitGossip(partition="p9", sc=sc))
        assert len(builder._pending_gossip) == 4
        builder.add_partition("p9")
        assert builder.vector()["p9"] == 9  # newest payloads survived
        assert not builder._pending_gossip

    def test_replay_only_consumes_matching_partition(self, builder):
        builder.on_gossip(CommitGossip(partition="p8", sc=2))
        builder.on_gossip(CommitGossip(partition="p9", sc=3))
        builder.add_partition("p9")
        assert builder.vector()["p9"] == 3
        assert [m.partition for m in builder._pending_gossip] == ["p8"]
        builder.add_partition("p8")
        assert builder.vector()["p8"] == 2

    def test_gossip_is_monotone(self, builder):
        builder.on_gossip(CommitGossip(partition="p1", sc=7))
        builder.on_gossip(CommitGossip(partition="p1", sc=3))  # stale
        assert builder.vector()["p1"] == 7


class TestAtomicity:
    def test_vector_excludes_half_visible_global(self, builder):
        """A global committed locally but with unknown remote version must
        be hidden: the local entry is lowered below it."""
        builder.on_local_commit(tid(9), 3, ("p0", "p1"), is_global=True)
        vector = builder.vector()
        assert vector["p0"] == 2  # lowered below version 3

    def test_vector_includes_fully_known_global(self, builder):
        builder.on_local_commit(tid(9), 3, ("p0", "p1"), is_global=True)
        builder.on_gossip(
            CommitGossip(
                partition="p1", sc=5, globals_committed=((tid(9), 4, ("p0", "p1")),)
            )
        )
        assert builder.vector() == {"p0": 3, "p1": 5}

    def test_remote_global_beyond_local_knowledge_is_hidden(self, builder):
        # p1 committed global t at version 2, but p0's version is unknown.
        builder.on_gossip(
            CommitGossip(
                partition="p1", sc=4, globals_committed=((tid(5), 2, ("p0", "p1")),)
            )
        )
        vector = builder.vector()
        assert vector["p1"] == 1  # lowered below the split global

    def test_cascading_lowering(self, builder):
        """Hiding one global can force hiding another (fixpoint)."""
        # t1 fully known at (p0:2, p1:2); t2 known only at p0:3.
        builder.on_local_commit(tid(1), 2, ("p0", "p1"), is_global=True)
        builder.on_local_commit(tid(2), 3, ("p0", "p1"), is_global=True)
        builder.on_gossip(
            CommitGossip(
                partition="p1", sc=9, globals_committed=((tid(1), 2, ("p0", "p1")),)
            )
        )
        vector = builder.vector()
        assert vector["p0"] == 2  # t2 hidden, t1 visible
        assert vector["p1"] == 9

    def test_gossip_payload_carries_own_globals(self, builder):
        builder.on_local_commit(tid(1), 1, ("p0", "p1"), is_global=True)
        payload = builder.gossip_payload()
        assert payload.partition == "p0"
        assert payload.sc == 1
        assert payload.globals_committed == ((tid(1), 1, ("p0", "p1")),)


class TestPropertyNeverSplits:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_vector_never_splits_a_global(self, data):
        """Under any interleaving of commits and partial gossip, the
        vector never includes a global at one partition and excludes it
        at another *once the inclusion is known to the builder*."""
        partitions = ["p0", "p1", "p2"]
        builder = GlobalSnapshotBuilder(partitions, "p0")
        rng = random.Random(data.draw(st.integers(0, 2**20)))
        num_txns = data.draw(st.integers(1, 25))
        # Generate a ground-truth history: each global txn gets a commit
        # version in each involved partition.
        versions = {p: 0 for p in partitions}
        truth = {}
        for n in range(num_txns):
            involved = tuple(sorted(rng.sample(partitions, 2)))
            commit_at = {}
            for p in involved:
                versions[p] += 1
                commit_at[p] = versions[p]
            truth[tid(n)] = (involved, commit_at)
        # Deliver faithful gossip: each partition advertises a random
        # number of prefixes of its history, each listing EVERY global
        # up to its sc (the real payload's completeness contract).
        for p in partitions:
            for _ in range(rng.randrange(0, 3)):
                point = rng.randint(0, versions[p])
                globals_upto = tuple(
                    (txn_id, commit_at[q], involved)
                    for txn_id, (involved, commit_at) in truth.items()
                    for q in involved
                    if q == p and commit_at[q] <= point
                )
                builder.on_gossip(
                    CommitGossip(
                        partition=p,
                        sc=point,
                        globals_committed=globals_upto,
                        complete_from=0,
                    )
                )
        vector = builder.vector()
        for txn_id, (involved, commit_at) in truth.items():
            visible = [vector.get(p, 0) >= commit_at[p] for p in involved]
            if any(visible):
                assert all(visible), f"{txn_id} split by vector {vector}"

    def test_incomplete_gossip_does_not_advance_usable_counter(self, builder):
        """A payload whose completeness range does not connect to the
        watermark must not let sc leak into the vector (it could hide
        un-listed globals)."""
        builder.on_gossip(
            CommitGossip(partition="p1", sc=10, complete_from=5)  # gap: (5, 10]
        )
        assert builder.vector()["p1"] == 0
        # Once the gap is filled, the counter becomes usable.
        builder.on_gossip(CommitGossip(partition="p1", sc=5, complete_from=0))
        builder.on_gossip(CommitGossip(partition="p1", sc=10, complete_from=5))
        assert builder.vector()["p1"] == 10
