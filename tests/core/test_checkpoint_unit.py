"""Unit tests for checkpoint serialization and window round trips."""

import pytest

from repro.core.certifier import CertificationWindow, CommittedRecord
from repro.core.checkpoint import (
    ServerCheckpoint,
    window_from_wire,
    window_to_wire,
)
from repro.core.transaction import ReadsetDigest, TxnId
from repro.errors import ProtocolError
from repro.net.message import encode_message, roundtrip


def sample_checkpoint():
    window = CertificationWindow(capacity=10)
    window.add(
        CommittedRecord(
            tid=TxnId("c", 1),
            version=3,
            readset=ReadsetDigest.exact(["0/a"]),
            ws_keys=frozenset({"0/a"}),
            is_global=True,
        )
    )
    return ServerCheckpoint(
        partition="p0",
        next_instance=7,
        sc=3,
        dc=9,
        reorder_threshold=4,
        chains={"0/a": ((0, None), (3, 42)), "0/b": ((2, "x"),)},
        gc_horizon=1,
        window=window_to_wire(window),
        window_floor=0,
    )


class TestSerialization:
    def test_bytes_round_trip(self):
        checkpoint = sample_checkpoint()
        restored = ServerCheckpoint.from_bytes(checkpoint.to_bytes())
        assert restored == checkpoint
        assert restored.chains["0/a"] == ((0, None), (3, 42))

    def test_codec_round_trip(self):
        checkpoint = sample_checkpoint()
        assert roundtrip(checkpoint) == checkpoint

    def test_from_bytes_rejects_other_messages(self):
        from repro.core.messages import NoopTick

        with pytest.raises(ProtocolError):
            ServerCheckpoint.from_bytes(encode_message(NoopTick()))


class TestWindowWire:
    def test_round_trip_preserves_certification_behaviour(self):
        window = CertificationWindow(capacity=5)
        for version in range(1, 4):
            window.add(
                CommittedRecord(
                    tid=TxnId("c", version),
                    version=version,
                    readset=ReadsetDigest.exact([f"k{version}"]),
                    ws_keys=frozenset({f"k{version}"}),
                    is_global=bool(version % 2),
                )
            )
        restored = window_from_wire(window_to_wire(window), capacity=5, floor=window.floor)
        assert len(restored) == len(window)
        from repro.core.transaction import TxnProjection

        txn = TxnProjection(
            tid=TxnId("t", 1),
            partition="p0",
            readset=ReadsetDigest.exact(["k2"]),
            writeset={"k2": 0},
            snapshot=1,
            partitions=("p0",),
            coordinator="s",
            client="c",
        )
        assert window.certify(txn) == restored.certify(txn)
        assert window.certify(txn) is False  # k2 written at version 2 > 1

    def test_floor_survives(self):
        restored = window_from_wire((), capacity=3, floor=9)
        assert restored.floor == 9

    def test_bloom_digests_survive(self):
        window = CertificationWindow(capacity=3)
        window.add(
            CommittedRecord(
                tid=TxnId("c", 1),
                version=1,
                readset=ReadsetDigest.bloomed(["hot"]),
                ws_keys=frozenset({"hot"}),
                is_global=True,
            )
        )
        restored = window_from_wire(window_to_wire(window), capacity=3, floor=0)
        record = next(iter(restored.records_after(0)))
        assert record.readset.contains_any(["hot"])
        assert not record.readset.is_exact
