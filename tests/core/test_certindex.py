"""Unit tests for key-indexed certification (``repro.core.certindex``).

The index must produce *bit-identical* verdicts to the reference scan on
every query — certification decides commit order at every replica, so a
single divergent verdict is a replica-divergence bug.  These tests pin
the equivalence on targeted histories (the Hypothesis differential suite
covers random ones), the counters, and the memory bounds of the
geometric write-key segments.
"""

import pytest

from repro.core.certifier import (
    CertificationWindow,
    CommittedRecord,
    certify_against_pending,
    find_reorder_position,
    outcome_conflicts,
)
from repro.core.certindex import (
    CertifierCounters,
    IndexedCertifier,
    KeyConflictIndex,
    ScanCertifier,
    _WriteSegments,
    make_certifier,
)
from repro.core.checkpoint import window_from_wire, window_to_wire
from repro.core.config import CertifierMode
from repro.core.pending import PendingList, PendingTxn
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection


def proj(
    name: str,
    reads=(),
    writes=(),
    partitions=("p0",),
    snapshot=0,
    bloom=False,
):
    readset = (
        ReadsetDigest.bloomed(reads) if bloom else ReadsetDigest.exact(reads)
    )
    return TxnProjection(
        tid=TxnId("c", hash(name) % 10_000),
        partition="p0",
        readset=readset,
        writeset={key: 1 for key in writes},
        snapshot=snapshot,
        partitions=tuple(partitions),
        coordinator="s",
        client="c",
    )


def record(version, reads=(), writes=(), is_global=False, bloom=False):
    readset = (
        ReadsetDigest.bloomed(reads) if bloom else ReadsetDigest.exact(reads)
    )
    return CommittedRecord(
        tid=TxnId("c", 1000 + version),
        version=version,
        readset=readset,
        ws_keys=frozenset(writes),
        is_global=is_global,
    )


def pending_entry(p, rt=0):
    return PendingTxn(proj=p, rt=rt, delivered_at=0.0)


def indexed(capacity=64, floor=0):
    window = CertificationWindow(capacity, floor=floor)
    pending = PendingList()
    return IndexedCertifier(window, pending), window, pending


class TestCertifyEquivalence:
    """IndexedCertifier.certify ≡ CertificationWindow.certify."""

    CASES = [
        # (txn kwargs, expected)
        (dict(reads=["b"], writes=["b"], snapshot=0), True),
        (dict(reads=["x"], writes=["x"], snapshot=0), False),
        (dict(reads=["x"], writes=["x"], snapshot=1), True),  # saw the write
        (dict(reads=["q"], writes=["g"], partitions=("p0", "p1"), snapshot=0), False),
        (dict(reads=["q"], writes=["g"], snapshot=0), True),  # local: no backward test
        (dict(reads=["x"], writes=[], snapshot=0, bloom=True), False),
        (dict(reads=["b"], writes=["b"], snapshot=0, bloom=True), True),
    ]

    @pytest.mark.parametrize("kwargs, expected", CASES)
    def test_matches_scan(self, kwargs, expected):
        certifier, window, _ = indexed()
        window.add(record(1, reads=["g"], writes=["x"]))
        txn = proj("t", **kwargs)
        assert window.certify(txn) is expected
        assert certifier.certify(txn) is expected

    def test_snapshot_below_floor_is_unknowable(self):
        certifier, window, _ = indexed(capacity=2)
        for version in range(1, 6):
            window.add(record(version, writes=["w"]))
        assert window.floor == 3
        too_old = proj("t", reads=["q"], writes=["q"], snapshot=2)
        assert certifier.certify(too_old) is None
        at_floor = proj("u", reads=["q"], writes=["q"], snapshot=3)
        assert certifier.certify(at_floor) is True

    def test_superseded_write_survives_eviction(self):
        """Key k is written at v1 and v3; evicting v1 must keep v3's entry."""
        certifier, window, _ = indexed(capacity=2)
        window.add(record(1, writes=["k"]))
        window.add(record(2, writes=["other"]))
        window.add(record(3, writes=["k"]))  # evicts v1
        assert window.floor == 1
        txn = proj("t", reads=["k"], writes=["k"], snapshot=1)
        assert window.certify(txn) is False
        assert certifier.certify(txn) is False

    def test_bloom_committed_readset_checked_backward(self):
        """A committed record whose readset is a bloom still blocks a
        global writing one of its read keys (the per-record fallback)."""
        certifier, window, _ = indexed()
        window.add(record(1, reads=["g"], writes=[], bloom=True))
        txn = proj("t", reads=["q"], writes=["g"], partitions=("p0", "p1"))
        assert window.certify(txn) is False
        assert certifier.certify(txn) is False
        clean = proj("u", reads=["q"], writes=["zz"], partitions=("p0", "p1"))
        assert window.certify(clean) is certifier.certify(clean) is True


class TestPendingEquivalence:
    def test_outcome_conflicts_order_matches_scan(self):
        certifier, _, pending = indexed()
        for name, writes in [("a", ["x"]), ("b", ["y"]), ("c", ["x"])]:
            pending.append(
                pending_entry(proj(name, reads=["q"], writes=writes, partitions=("p0", "p1")))
            )
        txn = proj("t", reads=["x"], writes=["q"], partitions=("p0", "p1"))
        assert certifier.outcome_conflicts(txn) == outcome_conflicts(txn, pending)
        assert len(certifier.outcome_conflicts(txn)) == 3  # two forward + one backward

    def test_certify_against_pending_matches(self):
        certifier, _, pending = indexed()
        pending.append(
            pending_entry(proj("g1", reads=["x"], writes=["x"], partitions=("p0", "p1")))
        )
        hit = proj("g2", reads=["x"], writes=["y"], partitions=("p0", "p1"))
        miss = proj("g3", reads=["y"], writes=["y"], partitions=("p0", "p1"))
        assert certifier.certify_against_pending(hit) is certify_against_pending(hit, pending)
        assert certifier.certify_against_pending(miss) is certify_against_pending(miss, pending)

    def test_removal_clears_the_index(self):
        certifier, _, pending = indexed()
        entry = pending_entry(proj("g", reads=["x"], writes=["x"], partitions=("p0", "p1")))
        pending.append(entry)
        pending.remove(entry.tid)
        txn = proj("t", reads=["x"], writes=["x"], partitions=("p0", "p1"))
        assert certifier.outcome_conflicts(txn) == []

    def test_pop_head_clears_the_index(self):
        certifier, _, pending = indexed()
        pending.append(pending_entry(proj("g", reads=["x"], writes=["x"], partitions=("p0", "p1"))))
        pending.pop_head()
        assert certifier.certify_against_pending(
            proj("t", reads=["x"], writes=["x"], partitions=("p0", "p1"))
        )

    def test_bloom_pending_readset_probed(self):
        certifier, _, pending = indexed()
        pending.append(
            pending_entry(
                proj("g", reads=["a"], writes=["w"], partitions=("p0", "p1"), bloom=True)
            )
        )
        txn = proj("t", reads=["q"], writes=["a"], partitions=("p0", "p1"))
        assert certifier.outcome_conflicts(txn) == outcome_conflicts(txn, pending)
        assert certifier.outcome_conflicts(txn) != []


class TestReorderEquivalence:
    """Every unit case of ``find_reorder_position`` through the index."""

    def global_entry(self, name, reads, writes, rt):
        return pending_entry(
            proj(name, reads=reads, writes=writes, partitions=("p0", "p1")), rt=rt
        )

    CASES = [
        # (entries, txn kwargs, delivered_count)
        ([], dict(reads=["a"], writes=["a"]), 5),
        ([("g", ["x"], ["x"], 100, True)], dict(reads=["a"], writes=["a"]), 10),
        ([("g", ["q"], ["x"], 100, True)], dict(reads=["x"], writes=["x"]), 10),
        (
            [("g", ["x"], ["x"], 100, True), ("l", ["y"], ["y"], 100, False)],
            dict(reads=["a"], writes=["a"]),
            10,
        ),
        ([("g", ["x"], ["x"], 5, True)], dict(reads=["a"], writes=["a"]), 6),
        ([("g", ["x"], ["x"], 5, True)], dict(reads=["a"], writes=["a"]), 5),
        ([("g", ["a"], ["x"], 100, True)], dict(reads=["b", "a"], writes=["a"]), 10),
        (
            [("g1", ["x"], ["x"], 100, True), ("g2", ["y"], ["y"], 100, True)],
            dict(reads=["a"], writes=["a"]),
            10,
        ),
        (
            [("g1", ["a"], ["x"], 100, True), ("g2", ["y"], ["y"], 100, True)],
            dict(reads=["b", "a"], writes=["a"]),
            10,
        ),
        ([("g1", ["q"], ["w"], 2, True)], dict(reads=["a"], writes=["a"]), 10),
    ]

    @pytest.mark.parametrize("entries, kwargs, dc", CASES)
    def test_matches_scan(self, entries, kwargs, dc):
        certifier, _, pending = indexed()
        for name, reads, writes, rt, is_global in entries:
            if is_global:
                pending.append(self.global_entry(name, reads, writes, rt))
            else:
                pending.append(pending_entry(proj(name, reads=reads, writes=writes), rt=rt))
        txn = proj("t", **kwargs)
        expected = find_reorder_position(txn, pending, dc)
        assert certifier.find_reorder_position(txn, dc) == expected


class TestWriteSegments:
    def test_geometric_merging_bounds_segment_count(self):
        segments = _WriteSegments(capacity=1024)
        for version in range(1, 1001):
            segments.add(version, frozenset({f"k{version}"}), floor=0)
        # Binary-counter discipline: O(log n) segments for n inserts.
        assert segments.segment_count() <= 11

    def test_capacity_merge_purges_evicted_entries(self):
        capacity = 16
        segments = _WriteSegments(capacity)
        # Keys recycle, so the live window only ever references
        # ``capacity`` distinct keys; the purge must keep entry_count
        # from growing with history length.
        for version in range(1, 2001):
            key = f"k{version % capacity}"
            floor = max(0, version - capacity)
            segments.add(version, frozenset({key}), floor)
        assert segments.entry_count() <= 4 * capacity

    def test_bloom_conflict_matches_per_record_probes(self):
        segments = _WriteSegments(capacity=8)
        writes = {1: ["a"], 2: ["b"], 3: ["c"], 4: ["a", "d"]}
        for version, keys in writes.items():
            segments.add(version, frozenset(keys), floor=0)
        digest = ReadsetDigest.bloomed(["d"])
        for snapshot in range(0, 5):
            expected = any(
                digest.contains_any(keys)
                for version, keys in writes.items()
                if version > snapshot
            )
            assert segments.bloom_conflict(digest, snapshot) is expected


class TestEvictionIndexConsistency:
    def test_evicted_reader_entries_retire(self):
        certifier, window, _ = indexed(capacity=2)
        window.add(record(1, reads=["r"], writes=[]))
        window.add(record(2, writes=["a"]))
        window.add(record(3, writes=["b"]))  # evicts v1 (the reader)
        index = certifier.index
        assert index._last_reader == {}
        assert "a" in index._last_writer and "b" in index._last_writer

    def test_evicted_bloom_records_retire(self):
        certifier, window, _ = indexed(capacity=2)
        window.add(record(1, reads=["r"], writes=[], bloom=True))
        window.add(record(2, writes=["a"]))
        window.add(record(3, writes=["b"]))
        assert len(certifier.index._bloom_records) == 0


class TestCounters:
    def test_index_hits_count_pure_index_queries(self):
        counters = CertifierCounters()
        window = CertificationWindow(64)
        pending = PendingList()
        certifier = IndexedCertifier(window, pending, counters)
        window.add(record(1, writes=["x"]))
        certifier.certify(proj("t", reads=["x"], writes=["x"], snapshot=0))
        assert counters.index_hits == 1
        assert counters.index_fallbacks == 0
        assert counters.ctest_calls == 0

    def test_bloom_committed_readsets_count_fallbacks(self):
        counters = CertifierCounters()
        window = CertificationWindow(64)
        certifier = IndexedCertifier(window, PendingList(), counters)
        window.add(record(1, reads=["g"], writes=[], bloom=True))
        certifier.certify(proj("t", reads=["q"], writes=["g"], partitions=("p0", "p1")))
        assert counters.index_fallbacks == 1
        assert counters.ctest_calls == 1  # one per-record probe
        assert counters.index_hits == 0

    def test_scan_counts_window_span(self):
        counters = CertifierCounters()
        window = CertificationWindow(64)
        certifier = ScanCertifier(window, PendingList(), counters)
        for version in range(1, 11):
            window.add(record(version, writes=[f"k{version}"]))
        certifier.certify(proj("t", reads=["zz"], writes=["zz"], snapshot=4))
        assert counters.ctest_calls == 6  # records 5..10
        assert counters.index_hits == 0


class TestRebuild:
    def test_checkpoint_roundtrip_preserves_verdicts(self):
        window = CertificationWindow(capacity=4)
        for version, (reads, writes, bloom) in enumerate(
            [(["r1"], ["w1"], False), ([], ["w2"], False), (["r3"], [], True)], start=1
        ):
            window.add(record(version, reads=reads, writes=writes, bloom=bloom))
        restored = window_from_wire(
            window_to_wire(window), capacity=4, floor=window.floor
        )
        certifier = IndexedCertifier(restored, PendingList())
        for kwargs in [
            dict(reads=["w1"], writes=["x"], snapshot=0),
            dict(reads=["q"], writes=["r3"], partitions=("p0", "p1"), snapshot=0),
            dict(reads=["q"], writes=["q"], snapshot=0),
            dict(reads=["w2"], writes=["w2"], snapshot=2),
        ]:
            txn = proj("t", **kwargs)
            assert certifier.certify(txn) is window.certify(txn)

    def test_rebuild_includes_pending(self):
        window = CertificationWindow(capacity=4)
        pending = PendingList()
        pending.append(
            pending_entry(proj("g", reads=["x"], writes=["x"], partitions=("p0", "p1")))
        )
        certifier = IndexedCertifier(window, pending)
        txn = proj("t", reads=["x"], writes=["q"], partitions=("p0", "p1"))
        assert certifier.outcome_conflicts(txn) == outcome_conflicts(txn, pending)


class TestFactory:
    def test_make_certifier_modes(self):
        window = CertificationWindow(8)
        pending = PendingList()
        assert isinstance(
            make_certifier(CertifierMode.INDEX, window, pending), IndexedCertifier
        )
        assert window.listener is not None
        assert isinstance(
            make_certifier(CertifierMode.SCAN, window, pending), ScanCertifier
        )
        # The scan detaches the stale index so it stops mirroring.
        assert window.listener is None
        assert pending.listener is None

    def test_listener_mirror_is_in_sync(self):
        certifier, window, pending = indexed(capacity=8)
        window.add(record(1, writes=["k"]))
        fresh = KeyConflictIndex(8)
        fresh.rebuild(window, pending)
        assert fresh._last_writer == certifier.index._last_writer
