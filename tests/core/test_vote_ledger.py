"""Ledger-mode termination semantics (docs/PROTOCOL.md §14).

Counterpart to tests/core/test_server_deferral.py, which pins the
optimistic (arrival-time) vote semantics.  Here every vote — our own
verdict and every remote partition's — takes effect only at its delivery
position in the partition's own log, so nothing about termination
depends on message-arrival timing.  These tests drive one SdurServer by
hand; the loopback fabric below plays the partition's atomic broadcast
by feeding own-partition proposals back to ``on_adeliver`` in order.
"""

from repro.core.config import SdurConfig, TerminationMode
from repro.core.directory import ClusterDirectory
from repro.core.messages import AbortRequest, OutcomeNotice, Vote
from repro.core.partitioning import PartitionMap
from repro.core.server import SdurServer
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection
from repro.net.topology import US_EAST, Topology
from repro.runtime.sim import SimWorld
from repro.termination import VoteLedger, VoteRecord


class LoopbackFabric:
    """Feeds own-partition abcasts back to the server, in log order."""

    def __init__(self):
        self.server = None
        self.broadcasts = []
        self._next_instance = 100

    def abcast(self, partition, value):
        self.broadcasts.append((partition, value))
        if self.server is not None and partition == self.server.partition:
            instance = self._next_instance
            self._next_instance += 1
            self.server.runtime.set_timer(
                0.0, lambda i=instance, v=value: self.server.on_adeliver(i, v)
            )


class CaptureFabric:
    """Captures abcasts without delivering them (manual log control)."""

    def __init__(self):
        self.broadcasts = []

    def abcast(self, partition, value):
        self.broadcasts.append((partition, value))


def make_server(fabric=None, retry_interval=None, world=None):
    world = world or SimWorld(seed=1)
    topology = Topology()
    for name in ("s1", "s2", "q1", "q2", "client"):
        topology.add(name, US_EAST)
    directory = ClusterDirectory(
        partitions={"p0": ["s1", "s2"], "p1": ["q1", "q2"]},
        preferred={"p0": "s1", "p1": "q1"},
        topology=topology,
    )
    runtime = world.runtime_for("s1")
    sent = []
    for name in ("s2", "q1", "q2", "client"):
        world.network.register(name, lambda src, msg, n=name: sent.append((n, msg)))
    fabric = fabric or LoopbackFabric()
    server = SdurServer(
        runtime=runtime,
        partition="p0",
        directory=directory,
        partition_map=PartitionMap.by_index(2),
        fabric=fabric,
        # termination_mode deliberately not set: the default must be LEDGER.
        config=SdurConfig(
            vote_timeout=None,
            gossip_interval=None,
            ledger_retry_interval=retry_interval,
        ),
    )
    if isinstance(fabric, LoopbackFabric):
        fabric.server = server
    runtime.listen(server.handle)
    return world, server, sent


def proj(seq, reads, writes, partitions=("p0", "p1"), snapshot=0):
    return TxnProjection(
        tid=TxnId("c", seq),
        partition="p0",
        readset=ReadsetDigest.exact(reads),
        writeset={k: seq for k in writes},
        snapshot=snapshot,
        partitions=tuple(partitions),
        coordinator="s1",
        client="client",
    )


def votes_sent(sent, seq):
    return [
        (node, msg)
        for node, msg in sent
        if isinstance(msg, Vote) and msg.tid == TxnId("c", seq)
    ]


def outcome_of(sent, seq):
    for node, msg in sent:
        if isinstance(msg, OutcomeNotice) and msg.tid == TxnId("c", seq):
            return msg.outcome
    return None


def vote_records(fabric, seq=None):
    return [
        value
        for partition, value in fabric.broadcasts
        if isinstance(value, VoteRecord)
        and (seq is None or value.tid == TxnId("c", seq))
    ]


def abort_request(seq, involved=("p0", "p1")):
    return AbortRequest(
        tid=TxnId("c", seq),
        partition="p0",
        requester="p1",
        involved=tuple(involved),
        client="client",
    )


class TestOwnVerdict:
    def test_default_config_runs_ledger_mode(self):
        _, server, _ = make_server()
        assert server.config.termination_mode is TerminationMode.LEDGER
        assert server.ledger is not None

    def test_vote_emitted_only_at_self_delivery(self):
        fabric = CaptureFabric()
        world, server, sent = make_server(fabric=fabric)
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.1)
        # The verdict went into our own log, not onto the wire.
        records = vote_records(fabric, 1)
        assert len(records) == 1 and records[0].vote == "commit"
        assert records[0].involved == ("p0", "p1")
        assert not votes_sent(sent, 1)
        assert server.pending.get(TxnId("c", 1)).votes == {}
        # Self-delivery releases the inter-partition Vote.
        server.on_adeliver(50, records[0])
        world.run_for(0.1)
        g1_votes = votes_sent(sent, 1)
        assert {node for node, _ in g1_votes} == {"q1", "q2"}
        assert all(msg.vote == "commit" for _, msg in g1_votes)
        assert server.stats.votes_ordered == 1
        assert server.pending.get(TxnId("c", 1)).votes == {"p0": "commit"}

    def test_duplicate_record_deliveries_are_dropped(self):
        fabric = CaptureFabric()
        world, server, sent = make_server(fabric=fabric)
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.1)
        record = vote_records(fabric, 1)[0]
        server.on_adeliver(50, record)
        server.on_adeliver(51, record)  # outbox retry raced the leader
        world.run_for(0.1)
        assert server.stats.votes_ordered == 1
        assert len(votes_sent(sent, 1)) == 2  # one Vote each to q1, q2


class TestRemoteVotes:
    def test_remote_vote_resequenced_through_own_log(self):
        fabric = LoopbackFabric()
        world, server, sent = make_server(fabric=fabric)
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.1)  # own verdict self-delivers via loopback
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        # Arrival has no protocol effect: the vote is only proposed.
        entry = server.pending.get(TxnId("c", 1))
        assert entry.votes.get("p1") is None
        assert server.ledger.in_flight == 1
        world.run_for(0.1)  # relayed record reaches its log position
        assert outcome_of(sent, 1) == "commit"
        assert server.stats.votes_ordered == 2  # own verdict + relay
        assert server.store.read_latest("a").value == 1

    def test_early_remote_vote_buffered_until_projection(self):
        world, server, sent = make_server()
        # p1 delivered g1 first and voted; our projection is not in yet.
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.1)
        assert server.stats.votes_ordered == 1
        assert TxnId("c", 1) not in server.pending
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.1)  # merges the early vote, self-delivers our own
        assert outcome_of(sent, 1) == "commit"

    def test_completed_txn_ignores_late_remote_votes(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.2)
        assert outcome_of(sent, 1) == "commit"
        ordered = server.stats.votes_ordered
        # A duplicate Vote (e.g. from the other p1 replica) after
        # completion must not be proposed again.
        server.handle("q2", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.2)
        assert server.stats.votes_ordered == ordered
        assert server.ledger.in_flight == 0


class TestProposalPath:
    def test_non_leader_defers_to_retry_timer(self):
        fabric = CaptureFabric()
        world, server, _ = make_server(fabric=fabric, retry_interval=0.05)
        server.is_partition_leader = lambda: False
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        world.run_for(0.01)
        assert not vote_records(fabric, 1)  # followers do not propose at once
        world.run_for(0.1)
        records = vote_records(fabric, 1)
        assert records, "outbox retry must propose from followers too"
        # Delivery clears the outbox and stops the re-proposals.
        server.on_adeliver(50, records[0])
        world.run_for(0.01)
        assert server.ledger.in_flight == 0
        count = len(vote_records(fabric, 1))
        world.run_for(0.3)
        assert len(vote_records(fabric, 1)) == count

    def test_ledger_proposals_are_idempotent(self):
        proposals = []
        world = SimWorld(seed=1)
        ledger = VoteLedger(
            world.runtime_for("s1"),
            "p0",
            lambda partition, value: proposals.append(value),
            retry_interval=None,
        )
        tid = TxnId("c", 1)
        ledger.ledger(tid, "p1", "commit")
        ledger.ledger(tid, "p1", "commit")  # both p1 replicas sent the Vote
        assert len(proposals) == 1
        assert ledger.on_delivered(proposals[0]) is True
        assert ledger.on_delivered(proposals[0]) is False
        ledger.ledger(tid, "p1", "commit")  # already applied: no re-propose
        assert len(proposals) == 1

    def test_early_buffer_is_bounded(self):
        world = SimWorld(seed=1)
        ledger = VoteLedger(
            world.runtime_for("s1"), "p0", lambda p, v: None,
            retry_interval=None, limit=2,
        )
        for seq in (1, 2, 3):
            ledger.buffer_early(
                VoteRecord(tid=TxnId("c", seq), partition="p1", vote="commit")
            )
        assert ledger.take_early(TxnId("c", 1)) == {}  # oldest evicted
        assert ledger.take_early(TxnId("c", 3)) == {"p1": "commit"}
        assert ledger.take_early(TxnId("c", 3)) == {}  # take pops


class TestCycleRule:
    def test_abort_request_dooms_minimal_tid(self):
        fabric = CaptureFabric()
        world, server, sent = make_server(fabric=fabric)
        # g2 first, then g1 reading g2's write: g1 defers on a larger id.
        server.on_adeliver(0, proj(2, reads=["a"], writes=["a"]))
        server.on_adeliver(1, proj(1, reads=["a", "b"], writes=["b"]))
        world.run_for(0.1)
        entry = server.pending.get(TxnId("c", 1))
        assert entry.deps == {TxnId("c", 2)}
        server.on_adeliver(2, abort_request(1))
        world.run_for(0.1)
        assert server.stats.cycles_resolved == 1
        assert entry.cycle_victim and entry.doomed
        # The abort verdict goes through the log like any other vote.
        records = vote_records(fabric, 1)
        assert any(r.vote == "abort" and r.partition == "p0" for r in records)

    def test_abort_request_spares_larger_tid(self):
        fabric = CaptureFabric()
        world, server, _ = make_server(fabric=fabric)
        # g2 defers on the *smaller* g1: the rule must not fire.
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.on_adeliver(1, proj(2, reads=["a", "b"], writes=["b"]))
        world.run_for(0.1)
        server.on_adeliver(2, abort_request(2))
        world.run_for(0.1)
        assert server.stats.cycles_resolved == 0
        entry = server.pending.get(TxnId("c", 2))
        assert entry is not None and not entry.doomed

    def test_abort_request_walks_through_deferred_local(self):
        """The cycle's minimum can be a *local* transaction: locals never
        arm vote timeouts, so no abort request ever names them directly.
        The request for a larger global must walk down the dependency
        chain and doom the local, or the cycle wedges forever (this
        deadlocked full-system runs before the chain walk existed)."""
        fabric = CaptureFabric()
        world, server, _ = make_server(fabric=fabric)
        # g3 waits on p1's vote; local l1 defers on g3; g2 defers on l1.
        server.on_adeliver(0, proj(3, reads=["a"], writes=["a"]))
        server.on_adeliver(
            1, proj(1, reads=["a", "b"], writes=["b"], partitions=("p0",))
        )
        server.on_adeliver(2, proj(2, reads=["b", "c"], writes=["c"]))
        world.run_for(0.1)
        assert server.pending.get(TxnId("c", 2)).deps == {TxnId("c", 1)}
        assert server.pending.get(TxnId("c", 1)).deps == {TxnId("c", 3)}
        server.on_adeliver(3, abort_request(2))
        world.run_for(0.1)
        victim = server.pending.get(TxnId("c", 1))
        assert server.stats.cycles_resolved == 1
        assert victim.cycle_victim and victim.doomed
        # g2's deferral evaporated: its commit verdict heads to the log.
        records = vote_records(fabric, 2)
        assert any(r.vote == "commit" and r.partition == "p0" for r in records)

    def test_cycle_victim_counts_as_ledger_abort(self):
        fabric = CaptureFabric()
        world, server, sent = make_server(fabric=fabric)
        server.on_adeliver(0, proj(2, reads=["a"], writes=["a"]))
        server.on_adeliver(1, proj(1, reads=["a", "b"], writes=["b"]))
        world.run_for(0.1)
        server.on_adeliver(2, abort_request(1))
        # Let g2 commit so the doomed g1 reaches the head and completes.
        record = vote_records(fabric, 2)[0]
        server.on_adeliver(3, record)
        server.handle("q1", Vote(tid=TxnId("c", 2), partition="p1", vote="commit"))
        relayed = [r for r in vote_records(fabric, 2) if r.partition == "p1"]
        server.on_adeliver(4, relayed[0])
        world.run_for(0.1)
        assert outcome_of(sent, 2) == "commit"
        assert outcome_of(sent, 1) == "abort"
        assert server.stats.vote_ledger_aborts == 1
        assert server.stats.aborted_deferred == 1


class TestAbortRequests:
    def test_completed_txn_replies_with_recorded_verdict(self):
        world, server, sent = make_server()
        server.on_adeliver(0, proj(1, reads=["a"], writes=["a"]))
        server.handle("q1", Vote(tid=TxnId("c", 1), partition="p1", vote="commit"))
        world.run_for(0.2)
        assert outcome_of(sent, 1) == "commit"
        del sent[:]
        # The requester never saw our Vote (e.g. it was restored from a
        # checkpoint): the re-request replays the verdict.
        server.on_adeliver(10, abort_request(1))
        world.run_for(0.1)
        replies = votes_sent(sent, 1)
        assert replies and all(msg.vote == "commit" for _, msg in replies)

    def test_undelivered_txn_aborts_early_through_log(self):
        world, server, sent = make_server()
        server.on_adeliver(0, abort_request(5))
        world.run_for(0.1)  # abort record self-delivers, Vote goes out
        aborts = votes_sent(sent, 5)
        assert aborts and all(msg.vote == "abort" for _, msg in aborts)
        assert {node for node, _ in aborts} == {"q1", "q2"}
        # The projection arriving afterwards completes as an abort.
        server.on_adeliver(1, proj(5, reads=["a"], writes=["a"]))
        world.run_for(0.1)
        assert outcome_of(sent, 5) == "abort"
        assert TxnId("c", 5) not in server.pending
