"""Unit tests for the pending list."""

import pytest

from repro.core.pending import PendingList, PendingTxn
from repro.core.transaction import Outcome, ReadsetDigest, TxnId, TxnProjection
from repro.errors import ProtocolError


def entry(seq, partitions=("p0",), votes=None):
    proj = TxnProjection(
        tid=TxnId("c", seq),
        partition="p0",
        readset=ReadsetDigest.exact(["k"]),
        writeset={"k": seq},
        snapshot=0,
        partitions=tuple(partitions),
        coordinator="s",
        client="c",
    )
    e = PendingTxn(proj=proj, rt=seq + 10, delivered_at=0.0)
    if votes:
        e.votes.update(votes)
    return e


class TestList:
    def test_append_and_head(self):
        pending = PendingList()
        assert pending.head() is None
        first = entry(1)
        pending.append(first)
        pending.append(entry(2))
        assert pending.head() is first
        assert len(pending) == 2

    def test_insert_at_position(self):
        pending = PendingList()
        pending.append(entry(1))
        pending.append(entry(2))
        leaper = entry(3)
        pending.insert(0, leaper)
        assert pending.head() is leaper
        assert [e.proj.tid.seq for e in pending] == [3, 1, 2]

    def test_insert_bounds_checked(self):
        pending = PendingList()
        with pytest.raises(ProtocolError):
            pending.insert(1, entry(1))

    def test_duplicate_tids_rejected(self):
        pending = PendingList()
        pending.append(entry(1))
        with pytest.raises(ProtocolError):
            pending.append(entry(1))

    def test_pop_head_removes_and_returns(self):
        pending = PendingList()
        first = entry(1)
        pending.append(first)
        assert pending.pop_head() is first
        assert len(pending) == 0
        with pytest.raises(ProtocolError):
            pending.pop_head()

    def test_remove_by_tid(self):
        pending = PendingList()
        pending.append(entry(1))
        pending.append(entry(2))
        removed = pending.remove(TxnId("c", 1))
        assert removed.proj.tid.seq == 1
        assert TxnId("c", 1) not in pending
        with pytest.raises(ProtocolError):
            pending.remove(TxnId("c", 99))

    def test_lookup_and_position(self):
        pending = PendingList()
        pending.append(entry(1))
        pending.append(entry(2))
        assert pending.get(TxnId("c", 2)).proj.tid.seq == 2
        assert pending.position_of(TxnId("c", 2)) == 1
        assert pending.get(TxnId("c", 9)) is None

    def test_globals_pending_filter(self):
        pending = PendingList()
        pending.append(entry(1))
        pending.append(entry(2, partitions=("p0", "p1")))
        globals_ = pending.globals_pending()
        assert [e.proj.tid.seq for e in globals_] == [2]


class TestVotes:
    def test_missing_votes(self):
        e = entry(1, partitions=("p0", "p1"), votes={"p0": "commit"})
        assert e.missing_votes() == ["p1"]
        assert not e.has_all_votes()

    def test_outcome_requires_all_votes(self):
        e = entry(1, partitions=("p0", "p1"), votes={"p0": "commit"})
        with pytest.raises(ProtocolError):
            e.decided_outcome()

    def test_unanimous_commit(self):
        e = entry(1, partitions=("p0", "p1"), votes={"p0": "commit", "p1": "commit"})
        assert e.decided_outcome() is Outcome.COMMIT
        assert not e.has_abort_vote()

    def test_any_abort_vote_aborts(self):
        e = entry(1, partitions=("p0", "p1"), votes={"p0": "commit", "p1": "abort"})
        assert e.decided_outcome() is Outcome.ABORT
        assert e.has_abort_vote()
