"""Unit-level tests of server behaviours (Algorithm 2) on small clusters."""

from repro.core.client import Read
from repro.core.config import DelayMode, SdurConfig, ServiceCosts
from repro.core.messages import NoopTick
from repro.core.transaction import Outcome
from tests.conftest import make_cluster, run_txn, update_program


def started_cluster(num_partitions=2, config=None, **kwargs):
    cluster = make_cluster(num_partitions=num_partitions, config=config, **kwargs)
    cluster.seed({f"{p}/k{i}": 0 for p in range(num_partitions) for i in range(5)})
    client = cluster.add_client()
    cluster.start()
    cluster.world.run_for(0.5)
    return cluster, client


class TestSnapshotCounter:
    def test_sc_advances_per_commit(self):
        cluster, client = started_cluster()
        for _ in range(3):
            run_txn(cluster, client, update_program(["0/k0"]))
        cluster.world.run_for(0.5)
        for handle in cluster.servers.values():
            if handle.partition == "p0":
                assert handle.server.sc == 3

    def test_global_commit_bumps_both_partitions(self):
        cluster, client = started_cluster()
        run_txn(cluster, client, update_program(["0/k0", "1/k0"]))
        cluster.world.run_for(1.0)
        assert cluster.servers["s1"].server.sc == 1
        assert cluster.servers["s4"].server.sc == 1

    def test_aborted_transaction_does_not_bump_sc(self):
        cluster, client = started_cluster()
        # Two conflicting concurrent transactions: the loser must not
        # advance the snapshot counter.
        done = []
        client2 = cluster.add_client()
        client.execute(update_program(["0/k0", "0/k1"]), done.append)
        client2.execute(update_program(["0/k0", "0/k1"]), done.append)
        cluster.world.run_for(2.0)
        outcomes = sorted(r.outcome.value for r in done)
        assert outcomes == ["abort", "commit"]
        assert cluster.servers["s1"].server.sc == 1


class TestCounters:
    def test_dc_counts_every_delivery_commit_or_abort(self):
        cluster, client = started_cluster()
        done = []
        client2 = cluster.add_client()
        client.execute(update_program(["0/k0", "0/k1"]), done.append)
        client2.execute(update_program(["0/k0", "0/k1"]), done.append)
        cluster.world.run_for(2.0)
        assert cluster.servers["s1"].server.dc == 2

    def test_noop_ticks_advance_dc(self):
        cluster, _ = started_cluster()
        server = cluster.servers["s1"].server
        before = server.dc
        server.fabric.abcast("p0", NoopTick())
        cluster.world.run_for(0.5)
        assert server.dc == before + 1


class TestStats:
    def test_commit_and_abort_buckets(self):
        cluster, client = started_cluster()
        run_txn(cluster, client, update_program(["0/k0"]))
        run_txn(cluster, client, update_program(["0/k0", "1/k0"]))
        cluster.world.run_for(1.0)
        stats = cluster.servers["s1"].server.stats
        assert stats.committed_local == 1
        assert stats.committed_global == 1
        assert stats.aborted == 0

    def test_certification_abort_counted(self):
        cluster, client = started_cluster()
        done = []
        client2 = cluster.add_client()
        client.execute(update_program(["0/k0", "0/k1"]), done.append)
        client2.execute(update_program(["0/k0", "0/k1"]), done.append)
        cluster.world.run_for(2.0)
        stats = cluster.servers["s1"].server.stats
        assert stats.aborted_certification + stats.aborted_reorder == 1


class TestReadPath:
    def test_read_routed_through_session_server(self):
        cluster = make_cluster(num_partitions=2)
        cluster.seed({"1/k": 42})
        client = cluster.add_client(direct_reads=False, session_server="s1")
        cluster.start()
        cluster.world.run_for(0.5)
        seen = {}

        def program(txn):
            seen["v"] = yield Read("1/k")

        run_txn(cluster, client, program, read_only=True)
        assert seen["v"] == 42
        assert cluster.servers["s1"].server.stats.reads_routed == 1

    def test_lagging_replica_holds_read_until_caught_up(self):
        """A read at a snapshot the replica has not applied yet must wait,
        not answer stale (Algorithm 2 retrieves 'most recent <= st')."""
        cluster, client = started_cluster()
        server = cluster.servers["s2"].server  # p0 follower
        from repro.core.messages import ReadRequest
        from repro.core.transaction import TxnId

        run_txn(cluster, client, update_program(["0/k0"]))  # sc -> 1
        cluster.world.run_for(0.5)
        # Ask s2 for a FUTURE snapshot (2): must park, then answer after
        # the next commit.
        inbox = []
        cluster.world.topology.add("probe", "us-east")
        cluster.world.network.register("probe", lambda src, msg: inbox.append(msg))
        request = ReadRequest(
            tid=TxnId("probe", 1), op_id=0, key="0/k0", snapshot=2, reply_to="probe"
        )
        cluster.world.network.send("probe", "s2", request)
        cluster.world.run_for(0.5)
        assert inbox == []  # parked
        run_txn(cluster, client, update_program(["0/k1"]))  # sc -> 2
        cluster.world.run_for(0.5)
        assert len(inbox) == 1
        assert inbox[0].snapshot == 2


class TestDelaying:
    def test_fixed_delay_postpones_local_broadcast(self):
        config = SdurConfig(delay_mode=DelayMode.FIXED, delay_fixed=0.2)
        cluster, client = started_cluster(config=config)
        result = run_txn(cluster, client, update_program(["0/k0", "1/k0"]))
        assert result.committed
        # Latency must include the 200 ms local-broadcast delay.
        assert result.latency >= 0.2

    def test_local_transactions_never_delayed(self):
        config = SdurConfig(delay_mode=DelayMode.FIXED, delay_fixed=0.2)
        cluster, client = started_cluster(config=config)
        result = run_txn(cluster, client, update_program(["0/k0"]))
        assert result.latency < 0.1

    def test_auto_delay_uses_latency_estimate(self):
        config = SdurConfig(delay_mode=DelayMode.AUTO)
        cluster, client = started_cluster(config=config)
        result = run_txn(cluster, client, update_program(["0/k0", "1/k0"]))
        assert result.committed  # LAN estimate is ~1ms; just verify the path


class TestThresholdChange:
    def test_threshold_change_is_broadcast_and_applied(self):
        cluster, _ = started_cluster()
        server = cluster.servers["s1"].server
        assert server.reorder_threshold == 0
        server.request_threshold_change(16)
        cluster.world.run_for(0.5)
        for handle in cluster.servers.values():
            if handle.partition == "p0":
                assert handle.server.reorder_threshold == 16
            else:
                assert handle.server.reorder_threshold == 0


class TestServiceCosts:
    def test_apply_cost_slows_commits(self):
        fast_cluster, fast_client = started_cluster()
        slow_config = SdurConfig(costs=ServiceCosts(certify=0.01, apply=0.01))
        slow_cluster, slow_client = started_cluster(config=slow_config)
        fast = run_txn(fast_cluster, fast_client, update_program(["0/k0"]))
        slow = run_txn(slow_cluster, slow_client, update_program(["0/k0"]))
        assert slow.latency > fast.latency + 0.015

    def test_costs_preserve_outcome_correctness(self):
        config = SdurConfig(costs=ServiceCosts(read=0.001, certify=0.002, apply=0.003))
        cluster, client = started_cluster(config=config)
        result = run_txn(cluster, client, update_program(["0/k0", "1/k0"]))
        assert result.outcome is Outcome.COMMIT


class TestDuplicateDelivery:
    def test_duplicate_commit_request_is_idempotent(self):
        cluster, client = started_cluster()
        result = run_txn(cluster, client, update_program(["0/k0"]))
        # Replay the same projection through the broadcast: servers must
        # ignore the duplicate (client retry path).
        server = cluster.servers["s1"].server
        record = None
        for entry in server.window.records_after(0):
            record = entry
        assert record is not None
        assert result.committed
        sc_before = server.sc
        # Rebuild an identical projection and redeliver it.
        from repro.core.transaction import ReadsetDigest, TxnProjection

        duplicate = TxnProjection(
            tid=record.tid,
            partition="p0",
            readset=record.readset,
            writeset={"0/k0": 999},
            snapshot=0,
            partitions=("p0",),
            coordinator="s1",
            client="",
        )
        server.fabric.abcast("p0", duplicate)
        cluster.world.run_for(0.5)
        assert server.sc == sc_before  # not applied twice
        assert server.store.read_latest("0/k0").value != 999
