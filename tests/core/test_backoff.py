"""Client backoff with jitter (§16) and suspicion-dict hygiene."""

import random

import pytest

from repro.core.config import SdurConfig
from repro.errors import ConfigurationError
from repro.overload.admission import AdmissionConfig
from repro.overload.backoff import BackoffPolicy

from tests.conftest import make_cluster, run_txn, update_program


class TestBackoffPolicy:
    def test_envelope_grows_geometrically_to_cap(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, multiplier=2.0, jitter=0.0)
        assert [policy.envelope(a) for a in range(5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8, 1.0]
        )

    def test_huge_attempt_does_not_overflow(self):
        policy = BackoffPolicy(base=0.1, cap=2.0)
        assert policy.envelope(10_000) == 2.0

    def test_no_jitter_is_deterministic(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, jitter=0.0)
        rng = random.Random(1)
        assert policy.delay(3, rng) == policy.envelope(3)

    def test_jitter_stays_inside_envelope(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, jitter=0.5)
        rng = random.Random(42)
        for attempt in range(8):
            envelope = policy.envelope(attempt)
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert envelope * 0.5 <= delay <= envelope

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=0.0, cap=1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=1.0, cap=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=0.1, cap=1.0, multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=0.1, cap=1.0, jitter=1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=0.1, cap=1.0).envelope(-1)


class TestClientBusyBackoffTiming:
    def test_resubmits_follow_the_deterministic_envelope(self):
        """With jitter 0 the k-th Busy resubmission lands exactly
        ``base * 2**(k-1)`` after the shed (floored by retry_after)."""
        config = SdurConfig().with_admission(
            # One token, then ~forever to refill: every retry sheds too.
            AdmissionConfig(rate=0.0001, burst=1.0, retry_after=0.0)
        )
        cluster = make_cluster(1, config=config)
        client = cluster.add_client(
            busy_backoff_base=0.1,
            backoff_cap=0.4,
            backoff_jitter=0.0,
            max_busy_retries=3,
        )
        cluster.start()
        first = run_txn(cluster, client, update_program(["0/a"]))
        assert first.committed
        start = cluster.world.now
        second = run_txn(cluster, client, update_program(["0/b"]), timeout=30.0)
        assert not second.committed and second.abort_reason == "shed (rate)"
        # Sheds at ~0 (initial), then resubmits after 0.1, 0.2, 0.4 —
        # the abort lands right after the third shed reply.
        elapsed = second.finished - start
        assert 0.7 <= elapsed <= 0.9
        assert client.stats.busy_replies == 4  # initial + 3 resubmissions

    def test_retry_after_floors_the_delay(self):
        config = SdurConfig().with_admission(
            AdmissionConfig(rate=0.0001, burst=1.0, retry_after=0.5)
        )
        cluster = make_cluster(1, config=config)
        client = cluster.add_client(
            busy_backoff_base=0.01,
            backoff_cap=0.02,
            backoff_jitter=0.0,
            max_busy_retries=2,
        )
        cluster.start()
        run_txn(cluster, client, update_program(["0/a"]))
        start = cluster.world.now
        second = run_txn(cluster, client, update_program(["0/b"]), timeout=30.0)
        assert not second.committed
        # Two resubmissions, each floored to the server's 0.5 s hint.
        assert second.finished - start >= 1.0


class TestTimeoutBackoff:
    def test_commit_retry_delays_grow(self):
        """Commit-timeout retries back off exponentially when the server
        stays silent: resend k fires ``timeout * 2**k`` after resend k-1."""
        from repro.core.messages import CommitRequest

        cluster = make_cluster(1)
        client = cluster.add_client(commit_timeout=0.2, backoff_jitter=0.0)
        cluster.start()
        original_send = client.runtime.send
        client.runtime.send = lambda dst, msg: (
            None if isinstance(msg, CommitRequest) else original_send(dst, msg)
        )
        results = []
        client.execute(update_program(["0/x"]), results.append)
        cluster.world.run_for(1.5)
        # Reads finish in milliseconds; every commit send is then lost.
        # Resends at +0.2, +0.4, +0.8 → 3 by t=1.5 (a fixed timer would
        # have fired 7 times).
        assert client.stats.commit_resends == 3

    def test_read_retry_delays_grow(self):
        """Read-timeout retries back off exponentially against a silent
        partition (all replicas crashed)."""
        cluster = make_cluster(1)
        client = cluster.add_client(read_timeout=0.2, backoff_jitter=0.0)
        cluster.start()
        for node in list(cluster.servers):
            cluster.crash_server(node)
        results = []
        client.execute(update_program(["0/x"]), results.append)
        cluster.world.run_for(1.5)
        state = next(iter(client._active.values()))
        # Retries at +0.2, +0.4, +0.8 → 3 attempts recorded by t=1.5.
        assert max(state.read_attempts.values()) == 3

    def test_suspected_dict_prunes_expired_entries(self):
        cluster = make_cluster(1)
        client = cluster.add_client(suspect_ttl=0.5)
        cluster.start()
        client._suspect("s1")
        client._suspect("s2")
        assert set(client._suspected) == {"s1", "s2"}
        cluster.world.run_for(1.0)
        # Next suspicion write prunes everything already expired.
        client._suspect("s3")
        assert set(client._suspected) == {"s3"}
