"""Unit tests for the space-saving hot-key sketch."""

import random

import pytest

from repro.autoscale import SpaceSavingTracker
from repro.errors import ConfigurationError


class TestSpaceSavingTracker:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SpaceSavingTracker(0)

    def test_exact_below_capacity(self):
        tracker = SpaceSavingTracker(8)
        for _ in range(5):
            tracker.observe("a")
        for _ in range(3):
            tracker.observe("b")
        tracker.observe("c")
        assert tracker.top() == [("a", 5, 0), ("b", 3, 0), ("c", 1, 0)]
        assert tracker.total == 9

    def test_eviction_inherits_the_minimum_count(self):
        tracker = SpaceSavingTracker(2)
        tracker.observe("a", 5)
        tracker.observe("b", 2)
        tracker.observe("c")  # evicts b (min), inherits its count as error
        top = tracker.top()
        assert top == [("a", 5, 0), ("c", 3, 2)]
        # count - error lower-bounds the true frequency.
        for _key, count, error in top:
            assert count - error >= 1

    def test_heavy_hitters_survive_a_noisy_stream(self):
        rng = random.Random(7)
        tracker = SpaceSavingTracker(16)
        stream = ["hot1"] * 400 + ["hot2"] * 300 + [f"cold{i}" for i in range(300)]
        rng.shuffle(stream)
        for key in stream:
            tracker.observe(key)
        ranked = [key for key, _count, _error in tracker.top(2)]
        assert ranked == ["hot1", "hot2"]

    def test_counts_never_underestimate(self):
        rng = random.Random(11)
        tracker = SpaceSavingTracker(4)
        truth: dict[str, int] = {}
        for _ in range(500):
            key = f"k{rng.randrange(20)}"
            truth[key] = truth.get(key, 0) + 1
            tracker.observe(key)
        for key, count, error in tracker.top():
            assert count >= truth[key]
            assert count - error <= truth[key]

    def test_deterministic_across_replays(self):
        def replay() -> list[tuple[str, int, int]]:
            tracker = SpaceSavingTracker(3)
            for key in ["a", "b", "c", "d", "e", "a", "d", "f", "a"]:
                tracker.observe(key)
            return tracker.top()

        assert replay() == replay()

    def test_merged_into_sums_counts(self):
        left = SpaceSavingTracker(8)
        right = SpaceSavingTracker(8)
        combined = SpaceSavingTracker(8)
        for _ in range(4):
            left.observe("a")
        for _ in range(3):
            right.observe("a")
        right.observe("b")
        left.merged_into(combined)
        right.merged_into(combined)
        assert combined.top(1) == [("a", 7, 0)]
        assert len(combined) == 2
