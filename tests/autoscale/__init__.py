"""Autoscale subsystem tests."""
