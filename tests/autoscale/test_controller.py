"""Integration: the autoscale controller splits and merges on its own.

A downsized end-to-end loop — no scheduled faults, no operator: clients
hammer partition 0 until the controller splits it, then the load stops
and the cooled child is merged back.  The committed history must stay
serializable throughout (the merge install is recorded as a synthetic
commit) and the hot-key sketches must have seen the traffic.
"""

from repro.autoscale import AutoscaleConfig
from repro.checker.agreement import replica_agreement
from repro.checker.serializability import check_serializability
from tests.conftest import make_cluster, update_program

CONTROL = AutoscaleConfig(
    interval=0.25,
    capacity=200.0,
    high_water=0.5,
    low_water=0.1,
    sustain=2,
    cooldown=1.0,
    min_partitions=2,
    max_partitions=3,
    ewma_alpha=0.7,
)

HOT_UNTIL = 3.0
RUN_FOR = 10.0


class TestAutoscaleController:
    def test_controller_splits_then_merges_autonomously(self):
        cluster = make_cluster(num_partitions=2, seed=23)
        cluster.seed({f"0/k{i}": 0 for i in range(12)})
        cluster.seed({f"1/k{i}": 0 for i in range(4)})
        controller = cluster.enable_autoscale(CONTROL)
        clients = [cluster.add_client() for _ in range(4)]
        cluster.start()
        recorder = cluster.attach_recorder()

        rng = cluster.world.rng.stream("autoscale-load")
        done = []

        def issue(client):
            # Hot on partition 0 until HOT_UNTIL, then the load stops
            # and the split child has nothing left to do.
            keys = sorted({f"0/k{rng.randrange(12)}" for _ in range(2)})

            def on_done(result):
                done.append(result)
                if cluster.world.now < HOT_UNTIL:
                    issue(client)

            client.execute(update_program(keys), on_done)

        for client in clients:
            issue(client)
        cluster.world.run(until=RUN_FOR)
        for result in done:
            recorder.record_result(result)

        counters = controller.counters()
        assert counters["splits_triggered"] >= 1
        assert counters["merges_triggered"] >= 1
        actions = [action for _t, action, _p, _into in controller.events]
        assert actions.index("split") < actions.index("merge")
        # The child was folded back: the active set is the seed layout.
        assert cluster.routing.active_partitions() == ["p0", "p1"]
        assert "p2" in cluster.routing.retired

        assert done and any(r.committed for r in done)
        check_serializability(recorder).raise_if_failed()
        replica_agreement(recorder, cluster.replica_counts()).raise_if_failed()

    def test_hot_key_sketches_track_the_write_stream(self):
        cluster = make_cluster(num_partitions=2, seed=29)
        cluster.seed({"0/hot": 0, "0/cold": 0})
        controller = cluster.enable_autoscale(
            AutoscaleConfig(interval=0.25, min_partitions=2, max_partitions=2)
        )
        client = cluster.add_client()
        cluster.start()

        done = []

        def issue(remaining):
            def on_done(result):
                done.append(result)
                if remaining > 1:
                    issue(remaining - 1)

            client.execute(update_program(["0/hot"]), on_done)

        issue(20)
        cluster.world.run(until=3.0)

        assert len(done) == 20
        top = controller.hot_keys("p0", 1)
        assert top and top[0][0] == "0/hot"
        stats = cluster.server_stats()
        assert sum(s.get("hotkey_updates", 0) for s in stats.values() if isinstance(s, dict)) > 0
        # max_partitions == active: the controller held steady.
        assert controller.counters()["splits_triggered"] == 0
