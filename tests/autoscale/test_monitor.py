"""Unit tests for the load monitor's rate/EWMA pipeline.

The monitor only touches ``cluster.servers`` (node -> handle with
``.server.registry`` — the §19 metric registry — and ``.partition``)
plus ``cluster.routing.active_partitions()``, so a duck-typed stub
cluster keeps these tests synchronous and exact.
"""

from dataclasses import dataclass, field

from repro.autoscale import AutoscaleConfig, LoadMonitor, SpaceSavingTracker
from repro.telemetry import MetricRegistry


@dataclass
class StubStats:
    committed: int = 0
    aborted: int = 0
    shed_total: int = 0
    queue_depth: int = 0


@dataclass
class StubServer:
    stats: StubStats = field(default_factory=StubStats)
    hot_keys: SpaceSavingTracker | None = None

    def __post_init__(self) -> None:
        # The same three bound metrics repro.telemetry.wiring declares
        # on a real server — the monitor's entire read surface.
        stats = self.stats
        self.registry = MetricRegistry("stub")
        self.registry.counter(
            "sdur_certified", fn=lambda: stats.committed + stats.aborted
        )
        self.registry.counter("sdur_shed_total", fn=lambda: stats.shed_total)
        self.registry.gauge("sdur_queue_depth", fn=lambda: stats.queue_depth)


@dataclass
class StubHandle:
    server: StubServer
    partition: str


class StubRouting:
    def __init__(self, partitions):
        self._partitions = list(partitions)

    def active_partitions(self):
        return list(self._partitions)


class StubCluster:
    def __init__(self, handles, partitions):
        self.servers = handles
        self.routing = StubRouting(partitions)


def make_config(**overrides) -> AutoscaleConfig:
    defaults = dict(queue_weight=5.0, ewma_alpha=0.5, hotkey_capacity=8)
    defaults.update(overrides)
    return AutoscaleConfig(**defaults)


def two_replica_cluster():
    servers = {
        "s1": StubHandle(StubServer(), "p0"),
        "s2": StubHandle(StubServer(), "p0"),
    }
    return StubCluster(servers, ["p0"]), servers


class TestLoadMonitor:
    def test_first_sample_yields_no_rate(self):
        cluster, servers = two_replica_cluster()
        monitor = LoadMonitor(cluster, make_config())
        servers["s1"].server.stats.committed = 100
        assert monitor.sample(1.0) == {}

    def test_rates_average_across_replicas_not_sum(self):
        cluster, servers = two_replica_cluster()
        monitor = LoadMonitor(cluster, make_config())
        monitor.sample(0.0)
        # Every replica certifies every transaction, so both counters
        # advance by ~the same amount; the partition rate is their mean.
        servers["s1"].server.stats.committed = 100
        servers["s2"].server.stats.committed = 90
        servers["s2"].server.stats.aborted = 10
        loads = monitor.sample(1.0)
        assert loads["p0"].throughput == 100.0
        assert loads["p0"].pressure == 100.0

    def test_queue_depth_feeds_pressure(self):
        cluster, servers = two_replica_cluster()
        monitor = LoadMonitor(cluster, make_config(queue_weight=5.0))
        monitor.sample(0.0)
        servers["s1"].server.stats.queue_depth = 4
        servers["s2"].server.stats.queue_depth = 2
        loads = monitor.sample(1.0)
        assert loads["p0"].queue_depth == 3.0
        assert loads["p0"].pressure == 15.0  # 0 tps + 5.0 * 3 backlog

    def test_ewma_smooths_spikes(self):
        cluster, servers = two_replica_cluster()
        monitor = LoadMonitor(cluster, make_config(ewma_alpha=0.5))
        monitor.sample(0.0)
        for node in ("s1", "s2"):
            servers[node].server.stats.committed = 100
        first = monitor.sample(1.0)["p0"].pressure
        assert first == 100.0  # first raw sample seeds the EWMA
        # A 10x spike in the next window only doubles the smoothed signal…
        for node in ("s1", "s2"):
            servers[node].server.stats.committed = 1100
        second = monitor.sample(2.0)["p0"].pressure
        assert second == 0.5 * 1000.0 + 0.5 * 100.0
        # …and forget() drops the smoothing state.
        monitor.forget("p0")
        for node in ("s1", "s2"):
            servers[node].server.stats.committed = 1100
        assert monitor.sample(3.0)["p0"].pressure == 0.0

    def test_retired_partitions_are_skipped(self):
        servers = {
            "s1": StubHandle(StubServer(), "p0"),
            "s2": StubHandle(StubServer(), "p1"),
        }
        cluster = StubCluster(servers, ["p0"])  # p1 retired
        monitor = LoadMonitor(cluster, make_config())
        monitor.sample(0.0)
        servers["s1"].server.stats.committed = 10
        servers["s2"].server.stats.committed = 10
        assert set(monitor.sample(1.0)) == {"p0"}

    def test_shed_rate_is_reported(self):
        cluster, servers = two_replica_cluster()
        monitor = LoadMonitor(cluster, make_config())
        monitor.sample(0.0)
        servers["s1"].server.stats.shed_total = 20
        servers["s2"].server.stats.shed_total = 20
        assert monitor.sample(2.0)["p0"].shed_rate == 10.0

    def test_hot_keys_sum_replica_sketches(self):
        cluster, servers = two_replica_cluster()
        monitor = LoadMonitor(cluster, make_config(hotkey_capacity=8))
        for node in ("s1", "s2"):
            tracker = SpaceSavingTracker(8)
            servers[node].server.hot_keys = tracker
            for _ in range(3):
                tracker.observe("0/hot")
            tracker.observe(f"0/only-{node}")
        assert monitor.hot_keys("p0", 1) == [("0/hot", 6)]
