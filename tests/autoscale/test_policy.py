"""Unit tests for the watermark-hysteresis scale policy.

The policy is pure (no cluster, no clock), so these tests drive it with
synthetic pressure traces and assert exactly which tick fires.
"""

from repro.autoscale import AutoscaleConfig, ScalePolicy


def make_policy(**overrides) -> ScalePolicy:
    defaults = dict(
        interval=1.0,
        capacity=1000.0,
        high_water=0.75,
        low_water=0.25,
        sustain=3,
        cooldown=5.0,
        min_partitions=1,
        max_partitions=8,
    )
    defaults.update(overrides)
    return ScalePolicy(AutoscaleConfig(**defaults))


def tick(policy, now, pressures, adjacency=(), active=None):
    return policy.decide(
        now, pressures, list(adjacency), active if active is not None else len(pressures)
    )


class TestSplitHysteresis:
    def test_fires_only_after_sustain_consecutive_samples(self):
        policy = make_policy(sustain=3)
        assert not tick(policy, 0.0, {"p0": 900.0}).acts
        assert not tick(policy, 1.0, {"p0": 900.0}).acts
        decision = tick(policy, 2.0, {"p0": 900.0})
        assert decision.action == "split"
        assert decision.partition == "p0"

    def test_a_dip_resets_the_streak(self):
        policy = make_policy(sustain=3)
        tick(policy, 0.0, {"p0": 900.0})
        tick(policy, 1.0, {"p0": 900.0})
        tick(policy, 2.0, {"p0": 100.0})  # dip: streak back to zero
        assert not tick(policy, 3.0, {"p0": 900.0}).acts
        assert not tick(policy, 4.0, {"p0": 900.0}).acts
        assert tick(policy, 5.0, {"p0": 900.0}).action == "split"

    def test_pressure_at_the_watermark_does_not_count(self):
        policy = make_policy(sustain=1)
        # high water = 750 exactly: not *above*, so no streak.
        assert not tick(policy, 0.0, {"p0": 750.0}).acts
        assert tick(policy, 1.0, {"p0": 750.1}).action == "split"

    def test_picks_the_hottest_ripe_partition(self):
        policy = make_policy(sustain=1)
        decision = tick(policy, 0.0, {"p0": 800.0, "p1": 950.0, "p2": 100.0})
        assert decision.action == "split"
        assert decision.partition == "p1"

    def test_respects_max_partitions(self):
        policy = make_policy(sustain=1, max_partitions=2)
        assert not tick(policy, 0.0, {"p0": 900.0, "p1": 900.0}).acts


class TestMergeHysteresis:
    ADJ = [("p2", "p0")]

    def test_both_sides_must_sustain_under(self):
        policy = make_policy(sustain=2, min_partitions=1)
        quiet = {"p0": 50.0, "p2": 40.0}
        assert not tick(policy, 0.0, quiet, self.ADJ, active=3).acts
        decision = tick(policy, 1.0, quiet, self.ADJ, active=3)
        assert decision.action == "merge"
        assert decision.partition == "p2"
        assert decision.into == "p0"

    def test_one_warm_side_blocks_the_pair(self):
        policy = make_policy(sustain=2, min_partitions=1)
        for t in range(5):
            decision = tick(
                policy, float(t), {"p0": 500.0, "p2": 40.0}, self.ADJ, active=3
            )
            assert not decision.acts

    def test_respects_min_partitions(self):
        policy = make_policy(sustain=1, min_partitions=2)
        quiet = {"p0": 50.0, "p2": 40.0}
        assert not tick(policy, 0.0, quiet, self.ADJ, active=2).acts
        assert tick(policy, 1.0, quiet, self.ADJ, active=3).action == "merge"

    def test_picks_the_coolest_pair(self):
        policy = make_policy(sustain=1, min_partitions=1)
        adjacency = [("p2", "p0"), ("p3", "p1")]
        pressures = {"p0": 100.0, "p2": 100.0, "p1": 10.0, "p3": 10.0}
        decision = tick(policy, 0.0, pressures, adjacency, active=4)
        assert (decision.partition, decision.into) == ("p3", "p1")

    def test_split_beats_merge(self):
        policy = make_policy(sustain=1, min_partitions=1)
        pressures = {"p0": 50.0, "p2": 40.0, "p1": 900.0}
        decision = tick(policy, 0.0, pressures, self.ADJ, active=3)
        assert decision.action == "split"
        assert decision.partition == "p1"


class TestCooldown:
    def test_candidate_inside_cooldown_is_suppressed_not_queued(self):
        policy = make_policy(sustain=1, cooldown=5.0)
        assert tick(policy, 0.0, {"p0": 900.0, "p1": 100.0}).action == "split"
        # p1 heats up during the cooldown window: suppressed, flagged.
        suppressed = tick(policy, 1.0, {"p0": 100.0, "p1": 900.0})
        assert suppressed.action == "hold"
        assert suppressed.suppressed_by_cooldown
        # Once the window passes the (still-ripe) candidate fires.
        decision = tick(policy, 6.0, {"p0": 100.0, "p1": 900.0})
        assert decision.action == "split"
        assert decision.partition == "p1"

    def test_streaks_keep_counting_while_suppressed(self):
        policy = make_policy(sustain=3, cooldown=10.0)
        assert tick(policy, 0.0, {"p0": 900.0, "p1": 100.0}, active=2, adjacency=[]).acts is False
        assert not tick(policy, 1.0, {"p0": 900.0, "p1": 100.0}).acts
        assert tick(policy, 2.0, {"p0": 900.0, "p1": 100.0}).action == "split"
        # p1 sustains over the watermark entirely inside the cooldown:
        # the first two ticks just build the streak (no candidate yet),
        # the third has a ripe candidate that the cooldown swallows.
        assert not tick(policy, 3.0, {"p0": 100.0, "p1": 900.0}).suppressed_by_cooldown
        assert not tick(policy, 4.0, {"p0": 100.0, "p1": 900.0}).suppressed_by_cooldown
        assert tick(policy, 5.0, {"p0": 100.0, "p1": 900.0}).suppressed_by_cooldown
        # … and fires on the first tick after it expires: the streak
        # survived suppression, only the *action* waited.
        assert tick(policy, 12.0, {"p0": 100.0, "p1": 900.0}).action == "split"

    def test_acting_resets_the_winners_streaks(self):
        policy = make_policy(sustain=2, cooldown=0.1, min_partitions=1)
        quiet = {"p0": 50.0, "p2": 40.0}
        tick(policy, 0.0, quiet, [("p2", "p0")], active=3)
        assert tick(policy, 1.0, quiet, [("p2", "p0")], active=3).action == "merge"
        # Same quiet pressures immediately after: both streaks were
        # consumed by the action, so the pair must re-earn sustain.
        assert not tick(policy, 2.0, quiet, [("p2", "p0")], active=3).acts

    def test_vanished_partition_drops_its_streak(self):
        policy = make_policy(sustain=2)
        tick(policy, 0.0, {"p0": 900.0, "p1": 900.0})
        # p1 disappears (merged away elsewhere); only p0's streak lives.
        decision = tick(policy, 1.0, {"p0": 900.0})
        assert decision.action == "split"
        assert decision.partition == "p0"
        assert "p1" not in policy._over
