"""Unit tests for merge planning, routing overlays, and epoch state."""

import pytest

from repro.core.directory import ClusterDirectory
from repro.core.partitioning import PartitionMap
from repro.errors import ConfigurationError
from repro.reconfig import (
    MergePartitionMap,
    SplitPartitionMap,
    VersionedRouting,
    plan_merge,
    plan_split,
)


def two_partition_directory() -> ClusterDirectory:
    return ClusterDirectory(
        partitions={"p0": ["s1", "s2", "s3"], "p1": ["s4", "s5", "s6"]},
        preferred={"p0": "s1", "p1": "s4"},
    )


def make_routing() -> VersionedRouting:
    return VersionedRouting(two_partition_directory(), PartitionMap.by_index(2))


def split_then_routing() -> VersionedRouting:
    """Routing after p0 split into p0 + p2 (the merge's usual starting point)."""
    routing = make_routing()
    routing.apply(plan_split(routing, "p0"))
    return routing


class TestMergePartitionMap:
    def test_redirects_only_the_absorbed_partition(self):
        base = PartitionMap.by_index(2)
        merged = MergePartitionMap(base, "p1", "p0")
        for i in range(50):
            assert merged.partition_of(f"1/k{i}") == "p0"
            assert merged.partition_of(f"0/k{i}") == "p0"

    def test_keeps_partition_count(self):
        # Partition ids must stay dense for name allocation, so a merge
        # never decrements num_partitions — it only redirects keys.
        base = PartitionMap.by_index(3)
        merged = MergePartitionMap(base, "p2", "p1")
        assert merged.num_partitions == base.num_partitions

    def test_undoes_a_split(self):
        base = PartitionMap.by_index(2)
        split = SplitPartitionMap(base, "p0", "p2", "salt")
        merged = MergePartitionMap(split, "p2", "p0")
        for p in range(2):
            for i in range(100):
                key = f"{p}/k{i}"
                assert merged.partition_of(key) == base.partition_of(key)


class TestPlanMerge:
    def test_builds_a_merge_change(self):
        routing = split_then_routing()
        change = plan_merge(routing, "p2", "p0")
        assert change.kind == "merge"
        assert change.is_merge
        assert change.source == "p2"
        assert change.new_partition == "p0"
        assert change.new_members == ()
        assert change.new_epoch == routing.epoch + 1

    def test_unknown_partition_rejected(self):
        routing = make_routing()
        with pytest.raises(ConfigurationError):
            plan_merge(routing, "p9", "p0")
        with pytest.raises(ConfigurationError):
            plan_merge(routing, "p0", "p9")

    def test_self_merge_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_merge(make_routing(), "p0", "p0")

    def test_retired_partition_rejected(self):
        routing = split_then_routing()
        routing.apply(plan_merge(routing, "p2", "p0"))
        with pytest.raises(ConfigurationError):
            plan_merge(routing, "p2", "p1")
        with pytest.raises(ConfigurationError):
            plan_merge(routing, "p1", "p2")

    def test_split_of_retired_partition_rejected(self):
        routing = split_then_routing()
        routing.apply(plan_merge(routing, "p2", "p0"))
        with pytest.raises(ConfigurationError):
            plan_split(routing, "p2")


class TestVersionedRoutingMerge:
    def test_apply_retires_the_absorbed_partition(self):
        routing = split_then_routing()
        change = plan_merge(routing, "p2", "p0")
        assert routing.apply(change)
        assert routing.epoch == 2
        assert routing.retired == {"p2"}
        assert routing.active_partitions() == ["p0", "p1"]
        # Both sides of the merge own the new epoch; p1 is untouched.
        assert routing.ownership_epoch("p0") == 2
        assert routing.ownership_epoch("p2") == 2
        assert routing.ownership_epoch("p1") == 0

    def test_directory_keeps_the_absorbed_group(self):
        # The absorbed group's servers still vote on in-flight globals,
        # so the directory entry must survive retirement.
        routing = split_then_routing()
        members = routing.directory.servers_of("p2")
        routing.apply(plan_merge(routing, "p2", "p0"))
        assert routing.directory.servers_of("p2") == members

    def test_routing_matches_pre_split_map(self):
        base = PartitionMap.by_index(2)
        routing = split_then_routing()
        routing.apply(plan_merge(routing, "p2", "p0"))
        for p in range(2):
            for i in range(100):
                key = f"{p}/k{i}"
                assert routing.partition_map.partition_of(key) == base.partition_of(key)

    def test_apply_is_idempotent(self):
        routing = split_then_routing()
        change = plan_merge(routing, "p2", "p0")
        assert routing.apply(change)
        assert not routing.apply(change)
        assert routing.epoch == 2

    def test_fork_copies_retired(self):
        routing = split_then_routing()
        routing.apply(plan_merge(routing, "p2", "p0"))
        fork = routing.fork()
        assert fork.retired == {"p2"}
        fork.retired.add("p1")
        assert routing.retired == {"p2"}
