"""Tests for the elastic repartitioning subsystem."""
