"""Unit tests for epoch-versioned routing and split planning."""

import pytest

from repro.core.directory import ClusterDirectory
from repro.core.partitioning import PartitionMap
from repro.errors import ConfigurationError, ProtocolError
from repro.reconfig import (
    ConfigChange,
    SplitPartitionMap,
    VersionedRouting,
    directory_with_split,
    key_moves,
    moved_chains,
    plan_split,
)
from repro.reconfig.coordinator import allocate_server_names, next_partition_name


def two_partition_directory() -> ClusterDirectory:
    return ClusterDirectory(
        partitions={"p0": ["s1", "s2", "s3"], "p1": ["s4", "s5", "s6"]},
        preferred={"p0": "s1", "p1": "s4"},
    )


def make_routing() -> VersionedRouting:
    return VersionedRouting(two_partition_directory(), PartitionMap.by_index(2))


def split_change(routing: VersionedRouting | None = None) -> ConfigChange:
    return plan_split(routing or make_routing(), "p0")


class TestKeyMoves:
    def test_deterministic(self):
        assert key_moves("0/k1", "salt") == key_moves("0/k1", "salt")

    def test_salt_changes_the_half(self):
        keys = [f"0/k{i}" for i in range(200)]
        a = {k for k in keys if key_moves(k, "salt-a")}
        b = {k for k in keys if key_moves(k, "salt-b")}
        assert a != b

    def test_roughly_half_move(self):
        keys = [f"0/k{i}" for i in range(200)]
        moving = sum(1 for k in keys if key_moves(k, "salt"))
        assert 60 <= moving <= 140


class TestSplitPartitionMap:
    def test_moves_only_the_salted_half_of_the_source(self):
        base = PartitionMap.by_index(2)
        split = SplitPartitionMap(base, "p0", "p2", "s")
        keys = [f"{p}/k{i}" for p in range(2) for i in range(50)]
        for key in keys:
            before = base.partition_of(key)
            after = split.partition_of(key)
            if before == "p1":
                assert after == "p1"
            elif key_moves(key, "s"):
                assert after == "p2"
            else:
                assert after == "p0"

    def test_new_partition_name_must_be_dense(self):
        with pytest.raises(ConfigurationError):
            SplitPartitionMap(PartitionMap.by_index(2), "p0", "p7", "s")

    def test_splits_stack(self):
        base = PartitionMap.by_index(2)
        once = SplitPartitionMap(base, "p0", "p2", "a")
        twice = SplitPartitionMap(once, "p0", "p3", "b")
        assert twice.num_partitions == 4
        keys = [f"0/k{i}" for i in range(100)]
        assert {"p0", "p2", "p3"} <= {twice.partition_of(k) for k in keys}


class TestPlanSplit:
    def test_allocates_fresh_server_names(self):
        change = split_change()
        assert change.new_partition == "p2"
        assert change.new_members == ("s7", "s8", "s9")
        assert change.new_preferred == "s7"
        assert change.new_epoch == 1

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_split(make_routing(), "p9")

    def test_explicit_members(self):
        change = plan_split(make_routing(), "p1", new_members=("x1", "x2"))
        assert change.new_members == ("x1", "x2")
        assert change.new_preferred == "x1"

    def test_helpers(self):
        assert next_partition_name(PartitionMap.by_index(3)) == "p3"
        assert allocate_server_names(two_partition_directory(), 2) == ["s7", "s8"]


class TestVersionedRouting:
    def test_apply_advances_epoch_and_ownership(self):
        routing = make_routing()
        change = split_change(routing)
        assert routing.apply(change)
        assert routing.epoch == 1
        assert routing.ownership_epoch("p0") == 1
        assert routing.ownership_epoch("p2") == 1
        # p1's keyspace is untouched: old-epoch transactions stay valid.
        assert routing.ownership_epoch("p1") == 0
        assert routing.knows_partition("p2")
        assert routing.directory.servers_of("p2") == ["s7", "s8", "s9"]

    def test_apply_is_idempotent(self):
        routing = make_routing()
        change = split_change(routing)
        assert routing.apply(change)
        assert not routing.apply(change)
        assert routing.epoch == 1

    def test_epoch_gap_is_a_protocol_error(self):
        routing = make_routing()
        change = split_change(routing)
        future = ConfigChange(
            new_epoch=3,
            source=change.source,
            new_partition=change.new_partition,
            new_members=change.new_members,
            new_preferred=change.new_preferred,
            split_salt=change.split_salt,
        )
        with pytest.raises(ProtocolError):
            routing.apply(future)

    def test_apply_all_sorts_by_epoch(self):
        routing = make_routing()
        first = split_change(routing)
        preview = routing.fork()
        preview.apply(first)
        second = plan_split(preview, "p0")
        assert routing.apply_all([second, first])
        assert routing.epoch == 2

    def test_fork_is_independent(self):
        routing = make_routing()
        fork = routing.fork()
        fork.apply(split_change(fork))
        assert routing.epoch == 0
        assert not routing.knows_partition("p2")
        assert fork.epoch == 1

    def test_changes_since(self):
        routing = make_routing()
        change = split_change(routing)
        routing.apply(change)
        assert routing.changes_since(0) == (change,)
        assert routing.changes_since(1) == ()


class TestDirectoryWithSplit:
    def test_adds_partition_and_preferred(self):
        change = split_change()
        directory = directory_with_split(two_partition_directory(), change)
        assert directory.servers_of("p2") == ["s7", "s8", "s9"]
        assert directory.preferred_of("p2") == "s7"
        # The original partitions are untouched.
        assert directory.servers_of("p0") == ["s1", "s2", "s3"]


class TestMovedChains:
    def test_selects_only_moving_keys(self):
        split = SplitPartitionMap(PartitionMap.by_index(2), "p0", "p2", "s")
        dump = {f"0/k{i}": [(1, i)] for i in range(40)}
        dump["1/other"] = [(2, "stay")]
        moved = moved_chains(dump, split, "p2")
        assert moved
        assert "1/other" not in moved
        for key in moved:
            assert split.partition_of(key) == "p2"
        for key in set(dump) - set(moved):
            assert split.partition_of(key) != "p2"
