"""Shared fixtures and helpers for the SDUR test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.client import ReadMany, SdurClient, TxnResult

# Derandomized hypothesis profile for CI: examples are generated from a
# fixed seed (reproducible across runs) and failures print the full
# ``@reproduce_failure`` blob so a falsifying example can be promoted
# into a deterministic regression (see
# tests/properties/test_vote_ledger_regression.py for the pattern).
# Activate with ``HYPOTHESIS_PROFILE=ci``.
hypothesis_settings.register_profile(
    "ci", derandomize=True, print_blob=True, deadline=None
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
from repro.core.config import SdurConfig
from repro.core.partitioning import PartitionMap
from repro.geo.deployments import Deployment, lan_deployment, wan1_deployment
from repro.harness.cluster import SdurCluster, build_cluster
from repro.runtime.sim import SimWorld


@pytest.fixture
def world() -> SimWorld:
    """A bare simulation world (1 ms constant latency, no topology)."""
    return SimWorld(seed=1234)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(99)


def make_cluster(
    num_partitions: int = 2,
    deployment: Deployment | None = None,
    config: SdurConfig | None = None,
    seed: int = 7,
    **kwargs,
) -> SdurCluster:
    """A started-not-yet cluster on a LAN deployment (fast, deterministic)."""
    deployment = deployment or lan_deployment(num_partitions)
    return build_cluster(
        deployment,
        PartitionMap.by_index(num_partitions),
        config or SdurConfig(),
        seed=seed,
        intra_delay=0.001,
        **kwargs,
    )


def make_wan1_cluster(config: SdurConfig | None = None, seed: int = 7, **kwargs) -> SdurCluster:
    deployment = wan1_deployment(2)
    return build_cluster(
        deployment, PartitionMap.by_index(2), config or SdurConfig(), seed=seed, **kwargs
    )


def run_txn(
    cluster: SdurCluster,
    client: SdurClient,
    program,
    read_only: bool = False,
    label: str = "",
    timeout: float = 10.0,
) -> TxnResult:
    """Execute one transaction and drive the world until it completes."""
    results: list[TxnResult] = []
    client.execute(program, results.append, read_only=read_only, label=label)
    deadline = cluster.world.now + timeout
    while not results and cluster.world.now < deadline:
        if not cluster.world.kernel.step():
            break
    assert results, f"transaction did not complete within {timeout}s of simulated time"
    return results[0]


def update_program(keys: list[str], bump: int = 1):
    """Read all keys, write each incremented (ints; None reads as 0)."""

    def program(txn):
        values = yield ReadMany(tuple(keys))
        for key in keys:
            base = values[key] if isinstance(values[key], int) else 0
            txn.write(key, base + bump)

    return program


def read_program(keys: list[str], sink: dict | None = None):
    """Read all keys; optionally copy the values into ``sink``."""

    def program(txn):
        values = yield ReadMany(tuple(keys))
        if sink is not None:
            sink.update(values)

    return program
