"""Unit tests for cluster assembly and the experiment runner."""

import pytest

from repro.core.config import SdurConfig
from repro.core.partitioning import PartitionMap
from repro.errors import ConfigurationError
from repro.geo.deployments import lan_deployment
from repro.harness.cluster import build_cluster
from repro.harness.driver import ClosedLoopDriver, run_experiment
from repro.metrics.collector import MetricsCollector
from repro.workload.microbench import MicroBenchmark
from tests.conftest import make_cluster, run_txn, update_program


class TestBuild:
    def test_partition_count_must_match(self):
        with pytest.raises(ConfigurationError):
            build_cluster(lan_deployment(2), PartitionMap.by_index(3), SdurConfig())

    def test_every_server_wired(self):
        cluster = make_cluster(num_partitions=2)
        assert set(cluster.servers) == {"s1", "s2", "s3", "s4", "s5", "s6"}
        for handle in cluster.servers.values():
            assert handle.replica.group_id == handle.partition
            assert handle.server.partition == handle.partition

    def test_leaders_pinned_to_preferred(self):
        cluster = make_cluster(num_partitions=2)
        cluster.start()
        cluster.world.run_for(0.5)
        assert cluster.servers["s1"].replica.is_leader
        assert not cluster.servers["s2"].replica.is_leader
        assert cluster.servers["s4"].replica.is_leader

    def test_seed_splits_by_partition(self):
        cluster = make_cluster(num_partitions=2)
        cluster.seed({"0/a": 1, "1/b": 2})
        assert cluster.servers["s1"].server.store.read_latest("0/a").value == 1
        assert "1/b" not in cluster.servers["s1"].server.store
        assert cluster.servers["s4"].server.store.read_latest("1/b").value == 2

    def test_seed_after_start_rejected(self):
        cluster = make_cluster(num_partitions=1)
        cluster.start()
        with pytest.raises(ConfigurationError):
            cluster.seed({"0/a": 1})

    def test_start_idempotent(self):
        cluster = make_cluster(num_partitions=1)
        cluster.start()
        cluster.start()
        cluster.world.run_for(0.2)

    def test_server_stats_snapshot(self):
        cluster = make_cluster(num_partitions=1)
        client = cluster.add_client()
        cluster.start()
        cluster.world.run_for(0.5)
        run_txn(cluster, client, update_program(["0/x"]))
        stats = cluster.server_stats()
        assert stats["s1"]["committed_local"] == 1


class TestDriver:
    def test_closed_loop_reissues_until_stopped(self):
        cluster = make_cluster(num_partitions=1)
        client = cluster.add_client()
        cluster.start()
        collector = MetricsCollector()
        driver = ClosedLoopDriver(
            client,
            MicroBenchmark(1, 0, 0.0, items_per_partition=100),
            collector,
        )
        driver.start()
        cluster.world.run_for(2.0)
        driver.stop()
        in_flight_allowance = 1
        cluster.world.run_for(1.0)
        assert driver.issued > 10
        assert len(collector) >= driver.issued - in_flight_allowance

    def test_think_time_slows_issue_rate(self):
        def issued_with(think):
            cluster = make_cluster(num_partitions=1, seed=4)
            client = cluster.add_client()
            cluster.start()
            collector = MetricsCollector()
            driver = ClosedLoopDriver(
                client,
                MicroBenchmark(1, 0, 0.0, items_per_partition=100),
                collector,
                think_time=think,
            )
            driver.start()
            cluster.world.run_for(2.0)
            return driver.issued

        assert issued_with(0.1) < issued_with(0.0) / 2

    def test_run_experiment_windows(self):
        cluster = make_cluster(num_partitions=1)
        client = cluster.add_client()
        run = run_experiment(
            cluster,
            [(client, MicroBenchmark(1, 0, 0.0, items_per_partition=100))],
            warmup=0.5,
            measure=2.0,
            drain=0.5,
        )
        assert run.window_start == 0.5
        assert run.window_end == 2.5
        summary = run.summary()
        assert summary.committed > 0
        # Results that finished during warm-up are excluded.
        warm = [r for r in run.collector.results if r.finished < 0.5]
        assert len(run.collector.in_window(0.5, 2.5)) == len(run.collector.results) - len(
            warm
        ) - len([r for r in run.collector.results if r.finished > 2.5])

    def test_record_history_attaches_recorder(self):
        cluster = make_cluster(num_partitions=1)
        client = cluster.add_client()
        run = run_experiment(
            cluster,
            [(client, MicroBenchmark(1, 0, 0.0, items_per_partition=100))],
            warmup=0.2,
            measure=1.0,
            record_history=True,
        )
        assert run.recorder is not None
        assert run.recorder.commits
