"""Unit tests for fault schedules and the throughput timeline."""

import pytest

from repro.core.client import TxnResult
from repro.core.transaction import Outcome, TxnId
from repro.errors import ConfigurationError
from repro.harness.faults import Fault, FaultSchedule, throughput_timeline
from tests.conftest import make_cluster, run_txn, update_program


class TestFaultValidation:
    def test_crash_needs_a_node(self):
        with pytest.raises(ConfigurationError):
            Fault(at=1.0, kind="crash", target=("a", "b"))

    def test_cut_needs_a_link(self):
        with pytest.raises(ConfigurationError):
            Fault(at=1.0, kind="cut", target="a")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Fault(at=-1.0, kind="crash", target="a")

    def test_split_needs_a_partition(self):
        with pytest.raises(ConfigurationError):
            Fault(at=1.0, kind="split", target=("p0", "p1"))


class TestSchedule:
    def test_crash_fires_at_scheduled_time(self):
        cluster = make_cluster(num_partitions=1)
        cluster.start()
        schedule = FaultSchedule().crash(2.0, "s2")
        schedule.arm(cluster)
        cluster.world.run_for(1.0)
        assert not cluster.world.network.is_crashed("s2")
        cluster.world.run_for(2.0)
        assert cluster.world.network.is_crashed("s2")
        assert schedule.fired == [(2.0, "crash", "s2")]

    def test_cut_and_heal(self):
        cluster = make_cluster(num_partitions=1)
        cluster.start()
        schedule = FaultSchedule().cut(1.0, "s1", "s2").heal(2.0, "s1", "s2")
        schedule.arm(cluster)
        cluster.world.run_for(1.5)
        assert cluster.world.network.link_is_cut("s1", "s2")
        cluster.world.run_for(1.0)
        assert not cluster.world.network.link_is_cut("s1", "s2")

    def test_crash_region_targets_only_servers(self):
        from repro.geo.deployments import wan1_deployment
        from repro.core.partitioning import PartitionMap
        from repro.core.config import SdurConfig
        from repro.harness.cluster import build_cluster

        deployment = wan1_deployment(2)
        cluster = build_cluster(deployment, PartitionMap.by_index(2), SdurConfig())
        client = cluster.add_client(region="eu")  # a client in the region
        cluster.start()
        schedule = FaultSchedule().crash_region(1.0, cluster, "eu")
        schedule.arm(cluster)
        cluster.world.run_for(2.0)
        crashed = {t for _, kind, t in schedule.fired if kind == "crash"}
        assert crashed == {"s1", "s2", "s6"}  # EU servers only
        assert client.node_id not in crashed

    def test_cluster_still_serves_around_scheduled_follower_crash(self):
        cluster = make_cluster(num_partitions=1)
        cluster.seed({"0/x": 0})
        client = cluster.add_client()
        cluster.start()
        FaultSchedule().crash(0.5, "s3").arm(cluster)
        cluster.world.run_for(1.0)
        assert run_txn(cluster, client, update_program(["0/x"])).committed


class TestScheduleEdges:
    def test_heal_of_never_cut_link_is_a_noop(self):
        cluster = make_cluster(num_partitions=1)
        cluster.start()
        schedule = FaultSchedule().heal(1.0, "s1", "s2")
        schedule.arm(cluster)
        cluster.world.run_for(2.0)
        assert schedule.fired == [(1.0, "heal", ("s1", "s2"))]
        assert not cluster.world.network.link_is_cut("s1", "s2")

    def test_two_faults_at_the_same_instant_both_fire(self):
        cluster = make_cluster(num_partitions=1)
        cluster.start()
        schedule = FaultSchedule().crash(1.0, "s2").cut(1.0, "s1", "s3")
        schedule.arm(cluster)
        cluster.world.run_for(2.0)
        assert len(schedule.fired) == 2
        assert {kind for _, kind, _ in schedule.fired} == {"crash", "cut"}
        assert cluster.world.network.is_crashed("s2")
        assert cluster.world.network.link_is_cut("s1", "s3")

    def test_crash_of_already_crashed_node_is_idempotent(self):
        cluster = make_cluster(num_partitions=1)
        cluster.seed({"0/x": 0})
        client = cluster.add_client()
        cluster.start()
        schedule = FaultSchedule().crash(0.5, "s3").crash(1.0, "s3")
        schedule.arm(cluster)
        cluster.world.run_for(2.0)
        assert [kind for _, kind, _ in schedule.fired] == ["crash", "crash"]
        assert cluster.world.network.is_crashed("s3")
        # The rest of the cluster is unaffected by the double crash.
        assert run_txn(cluster, client, update_program(["0/x"])).committed


def result_at(finished, committed=True):
    return TxnResult(
        tid=TxnId("c", int(finished * 1000)),
        outcome=Outcome.COMMIT if committed else Outcome.ABORT,
        started=finished - 0.01,
        finished=finished,
        is_global=False,
        read_only=False,
        partitions=("p0",),
    )


class TestThroughputTimeline:
    def test_buckets_count_commits(self):
        results = [result_at(0.5), result_at(1.5), result_at(1.6), result_at(2.5)]
        timeline = throughput_timeline(results, start=0.0, end=3.0, bucket=1.0)
        assert timeline == [(0.0, 1.0), (1.0, 2.0), (2.0, 1.0)]

    def test_aborts_excluded(self):
        results = [result_at(0.5), result_at(0.6, committed=False)]
        timeline = throughput_timeline(results, start=0.0, end=1.0)
        assert timeline == [(0.0, 1.0)]

    def test_out_of_range_ignored(self):
        results = [result_at(5.0)]
        timeline = throughput_timeline(results, start=0.0, end=2.0)
        assert all(tps == 0 for _, tps in timeline)

    def test_bucket_scaling(self):
        results = [result_at(0.1), result_at(0.2)]
        timeline = throughput_timeline(results, start=0.0, end=0.5, bucket=0.5)
        assert timeline == [(0.0, 4.0)]  # 2 commits / 0.5s

    def test_invalid_bucket(self):
        with pytest.raises(ConfigurationError):
            throughput_timeline([], 0.0, 1.0, bucket=0.0)
