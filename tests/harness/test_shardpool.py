"""Harness teardown must not leak shard-executor worker threads.

The POOL backend spawns real ``concurrent.futures`` workers (named
``shardexec*``) the first time a server pre-certifies a batch.  Those
threads are owned by the server, not the simulated world — crashing or
dropping the world does nothing to them — so ``SdurCluster.shutdown()``
must join every pool, and tests using the POOL backend must leave the
process thread-clean (a leaked worker outlives the test and poisons
thread-count assertions elsewhere in the run).
"""

import threading

from repro.core.batch import BatchingConfig
from repro.core.config import SdurConfig
from repro.core.shardexec import ShardBackend, ShardExecConfig

from tests.conftest import make_cluster, run_txn, update_program


def shardexec_threads() -> list[str]:
    return [
        t.name for t in threading.enumerate() if t.name.startswith("shardexec")
    ]


class TestShardPoolTeardown:
    def test_shutdown_joins_pool_workers(self):
        config = SdurConfig(
            batching=BatchingConfig(max_batch=8),
        ).with_shard_executor(
            ShardExecConfig(num_shards=4, backend=ShardBackend.POOL)
        )
        cluster = make_cluster(2, config=config, seed=3)
        cluster.start()
        client = cluster.add_client()
        for i in range(24):
            run_txn(cluster, client, update_program([str(i % 9)]))
        cluster.world.run_for(1.0)
        stats = cluster.server_stats()
        assert any(
            counters["shard_certify_calls"] > 0
            for node, counters in stats.items()
            if node != "autoscale"
        )
        assert shardexec_threads()  # pools actually spawned workers
        cluster.shutdown()
        assert shardexec_threads() == []

    def test_shutdown_is_safe_for_serial_clusters(self):
        cluster = make_cluster(1, seed=4)
        cluster.start()
        cluster.world.run_for(0.2)
        cluster.shutdown()
        cluster.shutdown()  # idempotent
        assert shardexec_threads() == []
