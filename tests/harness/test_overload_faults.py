"""Gray-failure (degrade/restore) and region loss/heal fault injection."""

import pytest

from repro.consensus.replica import PaxosConfig
from repro.core.config import SdurConfig
from repro.core.partitioning import PartitionMap
from repro.errors import ConfigurationError
from repro.geo.deployments import wan2_deployment
from repro.harness.cluster import build_cluster
from repro.harness.faults import Fault, FaultSchedule
from tests.conftest import make_cluster, read_program, run_txn, update_program


class TestDegradeValidation:
    def test_degrade_needs_a_node(self):
        with pytest.raises(ConfigurationError):
            Fault(at=1.0, kind="degrade", target=("a", "b"))

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            Fault(at=1.0, kind="degrade", target="s1", delay=-0.1)
        with pytest.raises(ConfigurationError):
            Fault(at=1.0, kind="degrade", target="s1", delay=0.1, jitter=-0.1)

    def test_network_rejects_negative_penalty(self):
        cluster = make_cluster(1)
        with pytest.raises(ValueError):
            cluster.world.network.degrade("s1", -0.1)


class TestDegradeRestore:
    def test_degrade_adds_latency_both_directions(self):
        """Messages to AND from a degraded node carry the extra delay."""
        cluster = make_cluster(1)
        cluster.seed({"0/x": 0})
        client = cluster.add_client()
        cluster.start()
        baseline = run_txn(cluster, client, read_program(["0/x"]))
        healthy_latency = baseline.finished - baseline.started

        # Degrade the session server: the read round-trip crosses it twice.
        cluster.world.network.degrade(client.config.session_server, 0.1)
        slow = run_txn(cluster, client, read_program(["0/x"]))
        slow_latency = slow.finished - slow.started
        assert slow_latency >= healthy_latency + 0.2

        cluster.world.network.restore(client.config.session_server)
        recovered = run_txn(cluster, client, read_program(["0/x"]))
        assert recovered.finished - recovered.started < healthy_latency + 0.05

    def test_degraded_node_self_sends_unaffected(self):
        """The penalty models the node's NIC/link, not its CPU: loopback
        delivery (server to itself) stays fast."""
        cluster = make_cluster(1)
        network = cluster.world.network
        network.degrade("s1", 5.0)
        assert network._degrade_penalty("s1", "s2") >= 5.0
        assert network._degrade_penalty("s2", "s1") >= 5.0
        # send() skips the penalty entirely for src == dst.
        cluster.seed({"0/x": 0})
        client = cluster.add_client()
        cluster.start()
        network.restore("s1")
        assert run_txn(cluster, client, update_program(["0/x"])).committed

    def test_schedule_degrade_then_restore(self):
        cluster = make_cluster(1)
        cluster.start()
        schedule = (
            FaultSchedule()
            .degrade(1.0, "s2", delay=0.05, jitter=0.01)
            .restore(2.0, "s2")
        )
        schedule.arm(cluster)
        cluster.world.run_for(1.5)
        assert cluster.world.network.is_degraded("s2")
        cluster.world.run_for(1.0)
        assert not cluster.world.network.is_degraded("s2")
        assert [kind for _, kind, _ in schedule.fired] == ["degrade", "restore"]

    def test_slow_follower_is_masked_by_quorum(self):
        """A degraded follower does not slow commits: the leader reaches
        quorum with the healthy majority."""
        cluster = make_cluster(1)
        cluster.seed({"0/x": 0})
        client = cluster.add_client()
        cluster.start()
        first = run_txn(cluster, client, update_program(["0/x"]))
        healthy_latency = first.finished - first.started
        cluster.world.network.degrade("s3", 0.5)  # follower, not session/leader
        masked = run_txn(cluster, client, update_program(["0/x"]))
        assert masked.committed
        assert masked.finished - masked.started < healthy_latency + 0.1


class TestRegionLossHeal:
    @staticmethod
    def _wan_cluster():
        deployment = wan2_deployment(1)
        cluster = build_cluster(
            deployment,
            PartitionMap.by_index(1),
            SdurConfig(),
            paxos_config=PaxosConfig(catchup_interval=0.5),
        )
        cluster.seed({"0/x": 0})
        return deployment, cluster

    def test_region_loss_cuts_only_boundary_links(self):
        deployment, cluster = self._wan_cluster()
        lost = deployment.preferred_region["p0"]
        survivor_regions = [
            r for r in deployment.topology.regions() if r != lost
        ]
        cluster.start()
        schedule = FaultSchedule().region_loss(1.0, cluster, lost)
        schedule.arm(cluster)
        cluster.world.run_for(1.5)

        network = cluster.world.network
        topology = deployment.topology
        inside = [
            n for n in topology.nodes_in_region(lost) if n in cluster.servers
        ]
        outside = [n for n in topology.node_ids if topology.region_of(n) != lost]
        for a in inside:
            for b in outside:
                assert network.link_is_cut(a, b)
        # Links wholly inside the lost region, and wholly outside, survive.
        for region in survivor_regions:
            nodes = topology.nodes_in_region(region)
            for a in nodes:
                for b in nodes:
                    assert not network.link_is_cut(a, b)

    def test_loss_then_heal_recovers_commits(self):
        """Cut the majority away from a region, heal, and verify the
        cluster serves updates again (isolated replicas catch up)."""
        deployment, cluster = self._wan_cluster()
        lost = deployment.preferred_region["p0"]
        other = next(r for r in deployment.topology.regions() if r != lost)
        client = cluster.add_client(region=other)
        cluster.start()
        schedule = (
            FaultSchedule()
            .region_loss(1.0, cluster, lost)
            .region_heal(3.0, cluster, lost)
        )
        schedule.arm(cluster)
        cluster.world.run_for(5.0)
        result = run_txn(cluster, client, update_program(["0/x"]), timeout=20.0)
        assert result.committed

    def test_heal_restores_every_cut_link(self):
        deployment, cluster = self._wan_cluster()
        lost = deployment.preferred_region["p0"]
        cluster.start()
        schedule = (
            FaultSchedule()
            .region_loss(1.0, cluster, lost)
            .region_heal(2.0, cluster, lost)
        )
        schedule.arm(cluster)
        cluster.world.run_for(3.0)
        network = cluster.world.network
        for a, b in FaultSchedule._region_boundary(cluster, lost):
            assert not network.link_is_cut(a, b)
