"""Unit tests for the serializability checker on hand-built histories."""

from repro.checker.history import HistoryRecorder
from repro.checker.serializability import check_serializability
from repro.core.client import TxnResult
from repro.core.transaction import Outcome, ReadsetDigest, TxnId, TxnProjection


def projection(tid, partition, ws_keys, partitions):
    return TxnProjection(
        tid=tid,
        partition=partition,
        readset=ReadsetDigest.exact([]),
        writeset={key: 1 for key in ws_keys},
        snapshot=0,
        partitions=partitions,
        coordinator="s",
        client="c",
    )


def make_result(tid, reads, writes, partitions=("p0",), committed=True):
    return TxnResult(
        tid=tid,
        outcome=Outcome.COMMIT if committed else Outcome.ABORT,
        started=0.0,
        finished=1.0,
        is_global=len(partitions) > 1,
        read_only=not writes,
        partitions=partitions,
        read_versions=dict(reads),
        writes={key: 1 for key in writes},
    )


def record_commit(recorder, tid, partition, version, ws_keys, partitions):
    recorder.on_commit(
        "server", tid, partition, version, projection(tid, partition, ws_keys, partitions)
    )


class TestAcyclicHistories:
    def test_empty_history_ok(self):
        report = check_serializability(HistoryRecorder())
        assert report.ok

    def test_serial_chain_ok(self):
        recorder = HistoryRecorder()
        t1, t2 = TxnId("c", 1), TxnId("c", 2)
        record_commit(recorder, t1, "p0", 1, ["x"], ("p0",))
        record_commit(recorder, t2, "p0", 2, ["x"], ("p0",))
        recorder.record_result(make_result(t1, {"x": 0}, ["x"]))
        recorder.record_result(make_result(t2, {"x": 1}, ["x"]))
        report = check_serializability(recorder)
        assert report.ok
        assert report.num_edges >= 2  # T0->t1 (ww), t1->t2 (wr+ww)

    def test_read_only_snapshot_ok(self):
        recorder = HistoryRecorder()
        t1 = TxnId("c", 1)
        record_commit(recorder, t1, "p0", 1, ["x"], ("p0",))
        recorder.record_result(make_result(t1, {"x": 0}, ["x"]))
        recorder.record_result(make_result(TxnId("r", 1), {"x": 1, "y": 0}, []))
        assert check_serializability(recorder).ok


class TestViolations:
    def test_split_global_snapshot_is_a_cycle(self):
        """A read-only transaction seeing a global's write in p0 but not
        its write in p1 creates t -> RO -> t."""
        recorder = HistoryRecorder()
        t = TxnId("c", 1)
        record_commit(recorder, t, "p0", 1, ["x"], ("p0", "p1"))
        record_commit(recorder, t, "p1", 1, ["y"], ("p0", "p1"))
        recorder.record_result(make_result(t, {"x": 0, "y": 0}, ["x", "y"], ("p0", "p1")))
        # RO read x at version 1 (t visible) and y at version 0 (t missing).
        recorder.record_result(make_result(TxnId("r", 1), {"x": 1, "y": 0}, []))
        report = check_serializability(recorder)
        assert not report.ok
        assert report.cycle is not None

    def test_lost_update_is_a_cycle(self):
        """Two transactions both read version 0 of x and both commit
        writes — a lost update (rw + ww cycle)."""
        recorder = HistoryRecorder()
        t1, t2 = TxnId("c", 1), TxnId("c", 2)
        record_commit(recorder, t1, "p0", 1, ["x"], ("p0",))
        record_commit(recorder, t2, "p0", 2, ["x"], ("p0",))
        recorder.record_result(make_result(t1, {"x": 0}, ["x"]))
        recorder.record_result(make_result(t2, {"x": 0}, ["x"]))  # stale read!
        report = check_serializability(recorder)
        assert not report.ok

    def test_client_commit_without_server_record_flagged(self):
        recorder = HistoryRecorder()
        recorder.record_result(make_result(TxnId("c", 1), {"x": 0}, ["x"]))
        report = check_serializability(recorder)
        assert not report.ok
        assert any("never at servers" in issue for issue in report.issues)

    def test_partial_global_commit_flagged(self):
        recorder = HistoryRecorder()
        t = TxnId("c", 1)
        record_commit(recorder, t, "p0", 1, ["x"], ("p0", "p1"))
        recorder.record_result(make_result(t, {"x": 0, "y": 0}, ["x", "y"], ("p0", "p1")))
        report = check_serializability(recorder)
        assert not report.ok
        assert any("missing commit record" in issue for issue in report.issues)

    def test_unknown_read_version_flagged(self):
        recorder = HistoryRecorder()
        t = TxnId("c", 1)
        record_commit(recorder, t, "p0", 1, ["x"], ("p0",))
        recorder.record_result(make_result(t, {"x": 0}, ["x"]))
        recorder.record_result(make_result(TxnId("r", 1), {"x": 7}, []))
        report = check_serializability(recorder)
        assert not report.ok


class TestRecorder:
    def test_replica_divergence_detected(self):
        recorder = HistoryRecorder()
        t = TxnId("c", 1)
        record_commit(recorder, t, "p0", 1, ["x"], ("p0",))
        recorder.on_commit(
            "other-replica", t, "p0", 2, projection(t, "p0", ["x"], ("p0",))
        )
        assert recorder.violations
        report = check_serializability(recorder)
        assert not report.ok

    def test_agreeing_replicas_accumulate_reporters(self):
        recorder = HistoryRecorder()
        t = TxnId("c", 1)
        proj = projection(t, "p0", ["x"], ("p0",))
        for replica in ("s1", "s2", "s3"):
            recorder.on_commit(replica, t, "p0", 1, proj)
        recorder.assert_replica_agreement({"p0": 3})

    def test_missing_reporters_detected(self):
        recorder = HistoryRecorder()
        t = TxnId("c", 1)
        record_commit(recorder, t, "p0", 1, ["x"], ("p0",))
        try:
            recorder.assert_replica_agreement({"p0": 3})
        except AssertionError as exc:
            assert "1 of 3" in str(exc)
        else:
            raise AssertionError("expected a reporter-count failure")
