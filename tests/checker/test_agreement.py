"""Unit tests for the replica-agreement checker."""

import pytest

from repro.checker import HistoryRecorder, replica_agreement
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection


def tid(n):
    return TxnId("c", n)


def projection(t, partition, keys, partitions):
    return TxnProjection(
        tid=t,
        partition=partition,
        readset=ReadsetDigest.exact(keys),
        writeset={k: 1 for k in keys},
        snapshot=0,
        partitions=partitions,
        coordinator="s1",
        client="c1",
    )


def commit(recorder, node, t, partition, version):
    recorder.on_commit(node, t, partition, version, projection(t, partition, ["x"], (partition,)))


class TestReplicaAgreement:
    def test_identical_histories_agree(self):
        recorder = HistoryRecorder()
        for node in ("s1", "s2", "s3"):
            for n in (1, 2, 3):
                commit(recorder, node, tid(n), "p0", n)
        report = replica_agreement(recorder, {"p0": 3})
        assert report.ok
        assert report.num_replicas == 3
        assert report.num_commits == 3
        report.raise_if_failed()

    def test_swapped_versions_detected(self):
        """The optimistic-mode reorder race: two replicas commit the same
        two transactions at swapped versions."""
        recorder = HistoryRecorder()
        commit(recorder, "s1", tid(1), "p0", 1)
        commit(recorder, "s1", tid(2), "p0", 2)
        commit(recorder, "s2", tid(2), "p0", 1)
        commit(recorder, "s2", tid(1), "p0", 2)
        report = replica_agreement(recorder)
        assert not report.ok
        assert any("version 1" in issue for issue in report.issues)
        with pytest.raises(AssertionError, match="replicas disagree"):
            report.raise_if_failed()

    def test_midstream_hole_detected_without_drain_hint(self):
        recorder = HistoryRecorder()
        for n in (1, 2, 3):
            commit(recorder, "s1", tid(n), "p0", n)
        commit(recorder, "s2", tid(1), "p0", 1)
        commit(recorder, "s2", tid(3), "p0", 3)  # skipped version 2
        report = replica_agreement(recorder)
        assert not report.ok
        assert any("skipped" in issue for issue in report.issues)

    def test_tail_gap_tolerated_unless_drained(self):
        """A lagging replica is fine mid-run but divergence after drain."""
        recorder = HistoryRecorder()
        for n in (1, 2, 3):
            commit(recorder, "s1", tid(n), "p0", n)
        for n in (1, 2):
            commit(recorder, "s2", tid(n), "p0", n)
        assert replica_agreement(recorder).ok
        report = replica_agreement(recorder, {"p0": 2})
        assert not report.ok

    def test_non_monotonic_history_detected(self):
        recorder = HistoryRecorder()
        commit(recorder, "s1", tid(1), "p0", 2)
        commit(recorder, "s1", tid(2), "p0", 1)
        report = replica_agreement(recorder)
        assert not report.ok
        assert any("non-monotonic" in issue for issue in report.issues)

    def test_partitions_checked_independently(self):
        recorder = HistoryRecorder()
        commit(recorder, "s1", tid(1), "p0", 1)
        commit(recorder, "s2", tid(1), "p0", 1)
        commit(recorder, "q1", tid(2), "p1", 1)
        commit(recorder, "q2", tid(2), "p1", 1)
        assert replica_agreement(recorder, {"p0": 2, "p1": 2}).ok

    def test_recorded_violations_surface_in_report(self):
        recorder = HistoryRecorder()
        commit(recorder, "s1", tid(1), "p0", 1)
        commit(recorder, "s2", tid(1), "p0", 2)  # same txn, different version
        assert recorder.violations
        report = replica_agreement(recorder)
        assert not report.ok
