"""Wire-format coverage: every protocol message round-trips the codec.

The simulated transport only exercises serialization when
``codec_roundtrip`` is on; this test builds a representative instance of
*every* registered protocol message and proves it survives the wire, so
the asyncio transport can carry anything the protocols produce.
"""

import pytest

from repro.consensus.messages import (
    Accept,
    Accepted,
    Batch,
    Chosen,
    ClientPropose,
    CommitIndex,
    Heartbeat,
    LearnRequest,
    Nack,
    PaxosNoop,
    Prepare,
    Promise,
)
from repro.core.messages import (
    AbortRequest,
    Busy,
    CommitGossip,
    CommitRequest,
    GetSnapshotVector,
    NoopTick,
    OutcomeBatch,
    OutcomeNotice,
    ReadRequest,
    ReadResponse,
    SnapshotVectorReply,
    ThresholdChange,
    Vote,
)
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection
from repro.net.message import roundtrip
from repro.reconfig.epochs import ConfigChange
from repro.reconfig.messages import (
    BeginSplit,
    ConfigSnapshot,
    FinishSplit,
    GetConfig,
    InstallMigration,
    StaleEpochNotice,
)
from repro.termination.messages import VoteRecord, VoteRecordGroup

TID = TxnId("c9", 42)
PROJ = TxnProjection(
    tid=TID,
    partition="p0",
    readset=ReadsetDigest.exact(["0/a", "0/b"]),
    writeset={"0/a": [1, "two", None]},
    snapshot=7,
    partitions=("p0", "p1"),
    coordinator="s1",
    client="c9",
)
BLOOM_PROJ = TxnProjection(
    tid=TID,
    partition="p1",
    readset=ReadsetDigest.bloomed(["1/x"], fp_rate=0.01),
    writeset={},
    snapshot=0,
    partitions=("p0", "p1"),
    coordinator="s1",
    client="c9",
)
CHANGE = ConfigChange(
    new_epoch=1,
    source="p0",
    new_partition="p2",
    new_members=("s7", "s8", "s9"),
    new_preferred="s7",
    split_salt="split-e1-p0",
)

SAMPLES = [
    # Paxos
    PaxosNoop(),
    Batch(values=(PROJ, NoopTick(), "opaque")),
    ClientPropose(group="p0", value=PROJ),
    Prepare(group="p0", ballot=(3, 1), from_instance=12),
    Promise(group="p0", ballot=(3, 1), accepted={5: ((2, 0), PROJ), 6: ((1, 1), "v")}),
    Accept(group="p0", ballot=(3, 1), instance=9, value=BLOOM_PROJ),
    Accepted(group="p0", ballot=(3, 1), instance=9, value=BLOOM_PROJ),
    Chosen(group="p0", instance=9, value=PROJ),
    CommitIndex(group="p0", next_to_deliver=10),
    LearnRequest(group="p0", from_instance=3, to_instance=9),
    Nack(group="p0", rejected_ballot=(3, 1), promised_ballot=(4, 2)),
    Heartbeat(group="p0", leader_hint="s1"),
    # SDUR
    ReadRequest(tid=TID, op_id=3, key="0/a", snapshot=None, reply_to="c9"),
    ReadRequest(tid=TID, op_id=3, key="0/a", snapshot=11, reply_to="c9"),
    ReadResponse(
        tid=TID, op_id=3, key="0/a", value={"nested": [1, 2]}, snapshot=11,
        item_version=4, partition="p0",
    ),
    ReadResponse(
        tid=TID, op_id=3, key="0/a", value=None, snapshot=1, item_version=0,
        partition="p0", error="snapshot 1 below gc horizon 5",
    ),
    GetSnapshotVector(tid=TID, reply_to="c9"),
    SnapshotVectorReply(tid=TID, vector={"p0": 4, "p1": 9}),
    CommitRequest(tid=TID, projections={"p0": PROJ, "p1": BLOOM_PROJ}),
    OutcomeNotice(tid=TID, outcome="commit", partition="p0"),
    # Batched replies (docs/PROTOCOL.md §18): one frame per client per batch.
    OutcomeBatch(partition="p0", outcomes=((TID, "commit"), (TxnId("c9", 43), "abort"))),
    NoopTick(),
    AbortRequest(
        tid=TID, partition="p1", requester="p0", involved=("p0", "p1"), client="c9"
    ),
    ThresholdChange(value=16),
    # Admission control (docs/PROTOCOL.md §16): shed commit and shed read.
    Busy(tid=TID, server="s1", reason="rate", retry_after=0.05),
    Busy(tid=TID, server="s1", reason="queue", retry_after=0.05, op_id=3),
    Vote(tid=TID, partition="p1", vote="abort"),
    # Vote ledger (docs/PROTOCOL.md §14): own verdict and relayed flavor.
    VoteRecord(tid=TID, partition="p0", vote="commit", involved=("p0", "p1")),
    VoteRecord(tid=TID, partition="p1", vote="abort"),
    VoteRecordGroup(
        records=(
            VoteRecord(tid=TID, partition="p0", vote="commit", involved=("p0", "p1")),
            VoteRecord(tid=TxnId("c9", 43), partition="p0", vote="abort"),
        )
    ),
    CommitGossip(
        partition="p0",
        sc=9,
        globals_committed=((TID, 7, ("p0", "p1")),),
        complete_from=2,
    ),
    # Reconfiguration
    CHANGE,
    BeginSplit(change=CHANGE),
    InstallMigration(
        change=CHANGE,
        chains={"0/a": ((0, None), (4, "v")), "0/c": ((2, [1, 2]),)},
        source_sc=9,
        gc_horizon=2,
    ),
    FinishSplit(change=CHANGE),
    StaleEpochNotice(tid=TID, partition="p0", epoch=1, changes=(CHANGE,)),
    GetConfig(reply_to="c9", since_epoch=0),
    ConfigSnapshot(epoch=1, changes=(CHANGE,)),
]


@pytest.mark.parametrize("msg", SAMPLES, ids=lambda m: type(m).__name__)
def test_roundtrip(msg):
    decoded = roundtrip(msg)
    assert decoded == msg
    assert type(decoded) is type(msg)


def test_bloom_digest_still_queries_after_roundtrip():
    decoded = roundtrip(BLOOM_PROJ)
    assert decoded.readset.contains_any(["1/x"])
    assert not decoded.readset.contains_any(["1/definitely-not-there"])


def test_every_registered_message_has_a_sample():
    """Keep this list honest: new protocol messages must be covered."""
    from repro.net.message import registry

    protocol_modules = (
        "repro.consensus.messages",
        "repro.core.messages",
        "repro.reconfig.epochs",
        "repro.reconfig.messages",
        "repro.termination.messages",
    )
    covered = {type(m).__name__ for m in SAMPLES}
    registered = {
        name
        for name, cls in registry.items()
        if cls.__module__ in protocol_modules
    }
    missing = registered - covered
    assert not missing, f"messages without wire-coverage samples: {missing}"
