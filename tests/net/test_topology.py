"""Unit tests for topology and the region latency model."""

import random

import pytest

from repro.errors import ConfigurationError, UnknownNodeError
from repro.net.topology import (
    EU,
    LOOPBACK_DELAY,
    PAPER_INTER_REGION_DELAYS,
    US_EAST,
    US_WEST,
    RegionLatencyModel,
    Topology,
)


@pytest.fixture
def topo():
    topology = Topology()
    topology.add("a1", EU, "dc1")
    topology.add("a2", EU, "dc1")
    topology.add("a3", EU, "dc2")
    topology.add("b1", US_EAST, "dc1")
    topology.add("c1", US_WEST, "dc1")
    return topology


class TestTopology:
    def test_membership(self, topo):
        assert "a1" in topo and "zz" not in topo
        assert len(topo) == 5

    def test_duplicate_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.add("a1", EU)

    def test_unknown_node_raises(self, topo):
        with pytest.raises(UnknownNodeError):
            topo.region_of("ghost")

    def test_regions(self, topo):
        assert topo.regions() == {EU, US_EAST, US_WEST}
        assert set(topo.nodes_in_region(EU)) == {"a1", "a2", "a3"}

    def test_same_region(self, topo):
        assert topo.same_region("a1", "a3")
        assert not topo.same_region("a1", "b1")

    def test_proximity_ranking(self, topo):
        ranked = topo.sort_by_proximity("a1", ["c1", "b1", "a3", "a2", "a1"])
        assert ranked[0] == "a1"  # self first
        assert ranked[1] == "a2"  # same datacenter
        assert ranked[2] == "a3"  # same region, other dc
        assert set(ranked[3:]) == {"b1", "c1"}  # other regions last

    def test_proximity_ties_keep_input_order(self, topo):
        assert topo.sort_by_proximity("a1", ["b1", "c1"]) == ["b1", "c1"]
        assert topo.sort_by_proximity("a1", ["c1", "b1"]) == ["c1", "b1"]


class TestRegionLatencyModel:
    def test_intra_region_uses_delta(self, topo):
        model = RegionLatencyModel.uniform(topo, intra_delay=0.005, inter_delay=0.05)
        assert model.sample("a1", "a3", random.Random(1)) == 0.005

    def test_inter_region_uses_inter_delta(self, topo):
        model = RegionLatencyModel.uniform(topo, intra_delay=0.005, inter_delay=0.05)
        assert model.sample("a1", "b1", random.Random(1)) == 0.05

    def test_loopback_delay_for_self_messages(self, topo):
        model = RegionLatencyModel.uniform(topo, 0.005, 0.05)
        assert model.sample("a1", "a1", random.Random(1)) == LOOPBACK_DELAY

    def test_paper_defaults_match_measured_pairs(self, topo):
        model = RegionLatencyModel.paper_defaults(topo)
        rng = random.Random(1)
        assert model.sample("b1", "c1", rng) == pytest.approx(
            PAPER_INTER_REGION_DELAYS[frozenset({US_EAST, US_WEST})]
        )
        assert model.sample("a1", "c1", rng) == pytest.approx(
            PAPER_INTER_REGION_DELAYS[frozenset({US_WEST, EU})]
        )

    def test_paper_defaults_symmetric(self, topo):
        model = RegionLatencyModel.paper_defaults(topo)
        rng = random.Random(1)
        assert model.sample("a1", "b1", rng) == model.sample("b1", "a1", rng)

    def test_jitter_adds_nonnegative_noise(self, topo):
        model = RegionLatencyModel.paper_defaults(topo, jitter_fraction=0.2)
        rng = random.Random(2)
        base = PAPER_INTER_REGION_DELAYS[frozenset({US_EAST, EU})]
        samples = [model.sample("a1", "b1", rng) for _ in range(100)]
        assert all(s >= base for s in samples)
        assert len(set(samples)) > 1

    def test_expected_matches_constant_models(self, topo):
        model = RegionLatencyModel.uniform(topo, 0.004, 0.08)
        assert model.expected("a1", "a2") == 0.004
        assert model.expected("a1", "b1") == 0.08
