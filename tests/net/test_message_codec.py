"""Unit and property tests for the wire codec."""

from dataclasses import dataclass, field

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.net.message import (
    Message,
    decode_message,
    encode_message,
    message,
    roundtrip,
)


@message
@dataclass(frozen=True)
class _Ping(Message):
    seq: int
    note: str = ""


@message
@dataclass(frozen=True)
class _Blob(Message):
    data: bytes
    tags: frozenset = frozenset()
    pair: tuple = ()
    table: dict = field(default_factory=dict)


@message
@dataclass(frozen=True)
class _Nested(Message):
    inner: _Ping
    extras: list = field(default_factory=list)


class TestBasicRoundtrip:
    def test_simple_message(self):
        assert roundtrip(_Ping(seq=7, note="hi")) == _Ping(seq=7, note="hi")

    def test_scalars_survive(self):
        msg = _Nested(inner=_Ping(seq=0), extras=[None, True, False, 1, 2.5, "s"])
        assert roundtrip(msg) == msg

    def test_bytes(self):
        msg = _Blob(data=b"\x00\xff\x01binary")
        assert roundtrip(msg).data == b"\x00\xff\x01binary"

    def test_frozenset(self):
        msg = _Blob(data=b"", tags=frozenset({"a", "b", "c"}))
        assert roundtrip(msg).tags == frozenset({"a", "b", "c"})

    def test_tuple_stays_tuple(self):
        msg = _Blob(data=b"", pair=("x", 1, ("nested", 2)))
        decoded = roundtrip(msg)
        assert decoded.pair == ("x", 1, ("nested", 2))
        assert isinstance(decoded.pair, tuple)
        assert isinstance(decoded.pair[2], tuple)

    def test_dict_with_string_keys(self):
        msg = _Blob(data=b"", table={"k1": 1, "k2": [1, 2]})
        assert roundtrip(msg).table == {"k1": 1, "k2": [1, 2]}

    def test_dict_with_message_keys(self):
        key = _Ping(seq=1)
        msg = _Blob(data=b"", table={key: "value"})
        decoded = roundtrip(msg)
        assert decoded.table == {key: "value"}

    def test_dict_with_dunder_style_string_key_is_escaped(self):
        msg = _Blob(data=b"", table={"__msg__": "sneaky"})
        assert roundtrip(msg).table == {"__msg__": "sneaky"}

    def test_nested_messages(self):
        msg = _Nested(inner=_Ping(seq=3, note="n"), extras=[_Ping(seq=4)])
        decoded = roundtrip(msg)
        assert decoded.inner == _Ping(seq=3, note="n")
        assert decoded.extras == [_Ping(seq=4)]

    def test_wire_format_is_json_bytes(self):
        wire = encode_message(_Ping(seq=1))
        assert isinstance(wire, bytes)
        assert wire.startswith(b"{")


class TestErrors:
    def test_unregistered_dataclass_rejected(self):
        @dataclass(frozen=True)
        class NotRegistered:
            x: int

        with pytest.raises(CodecError):
            encode_message(NotRegistered(x=1))

    def test_unencodable_value_rejected(self):
        with pytest.raises(CodecError):
            encode_message(_Blob(data=b"", table={"fn": lambda: None}))

    def test_decode_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b'{"__msg__": "NoSuchMessage", "f": {}}')

    def test_decode_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"not json at all")

    def test_duplicate_tag_rejected(self):
        with pytest.raises(CodecError):

            @message
            @dataclass(frozen=True)
            class _Ping(Message):  # noqa: F811 - deliberate name collision
                other: int

    def test_non_dataclass_registration_rejected(self):
        with pytest.raises(CodecError):
            message(object)


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=20),
)
values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.binary(max_size=16),
        st.tuples(children, children),
        st.frozensets(st.text(max_size=8), max_size=4),
    ),
    max_leaves=12,
)


class TestPropertyRoundtrip:
    @given(seq=st.integers(min_value=0, max_value=2**40), note=st.text(max_size=50))
    def test_ping_roundtrips(self, seq, note):
        assert roundtrip(_Ping(seq=seq, note=note)) == _Ping(seq=seq, note=note)

    @given(extras=st.lists(values, max_size=5))
    def test_arbitrary_payloads_roundtrip(self, extras):
        msg = _Nested(inner=_Ping(seq=0), extras=extras)
        assert roundtrip(msg) == msg

    @given(data=st.binary(max_size=200))
    def test_arbitrary_bytes_roundtrip(self, data):
        assert roundtrip(_Blob(data=data)).data == data
