"""Integration tests for the real TCP transport (localhost)."""

import asyncio
from dataclasses import dataclass

import pytest

from repro.net.asyncio_transport import AioTransport
from repro.net.message import Message, message


@message
@dataclass(frozen=True)
class _Echo(Message):
    text: str
    payload: bytes = b""


def free_ports(n):
    import socket

    sockets, ports = [], []
    for _ in range(n):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


async def _run_pair(test_body):
    port_a, port_b = free_ports(2)
    directory = {"a": ("127.0.0.1", port_a), "b": ("127.0.0.1", port_b)}
    inbox_a, inbox_b = [], []
    ta = AioTransport("a", directory, lambda src, msg: inbox_a.append((src, msg)))
    tb = AioTransport("b", directory, lambda src, msg: inbox_b.append((src, msg)))
    await ta.start()
    await tb.start()
    try:
        await test_body(ta, tb, inbox_a, inbox_b)
    finally:
        await ta.close()
        await tb.close()


async def _drain(predicate, timeout=3.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition not reached")
        await asyncio.sleep(0.01)


class TestAioTransport:
    def test_round_trip_message(self):
        async def body(ta, tb, inbox_a, inbox_b):
            await ta.send("b", _Echo(text="hello"))
            await _drain(lambda: inbox_b)
            assert inbox_b == [("a", _Echo(text="hello"))]
            await tb.send("a", _Echo(text="back"))
            await _drain(lambda: inbox_a)
            assert inbox_a == [("b", _Echo(text="back"))]

        asyncio.run(_run_pair(body))

    def test_many_messages_in_order_per_connection(self):
        async def body(ta, tb, inbox_a, inbox_b):
            for i in range(50):
                await ta.send("b", _Echo(text=str(i)))
            await _drain(lambda: len(inbox_b) == 50)
            assert [m.text for _, m in inbox_b] == [str(i) for i in range(50)]

        asyncio.run(_run_pair(body))

    def test_binary_payload(self):
        async def body(ta, tb, inbox_a, inbox_b):
            blob = bytes(range(256))
            await ta.send("b", _Echo(text="bin", payload=blob))
            await _drain(lambda: inbox_b)
            assert inbox_b[0][1].payload == blob

        asyncio.run(_run_pair(body))

    def test_send_to_down_peer_is_dropped_silently(self):
        async def body(ta, tb, inbox_a, inbox_b):
            await tb.close()
            await ta.send("b", _Echo(text="into the void"))  # must not raise

        asyncio.run(_run_pair(body))

    def test_unknown_destination_raises(self):
        async def body(ta, tb, inbox_a, inbox_b):
            from repro.errors import TransportError

            with pytest.raises(TransportError):
                await ta.send("ghost", _Echo(text="?"))

        asyncio.run(_run_pair(body))
