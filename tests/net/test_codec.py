"""Tests of the struct-packed binary codec (repro.net.codec).

The packed codec shares the message registry with the JSON codec but
writes positional fields with 1-byte type tags and varint lengths — no
field names on the wire.  Every registered protocol message must
round-trip it (the wire-coverage sample list is reused wholesale), and
frames must be smaller than their JSON equivalents.
"""

import pytest

from repro.errors import CodecError
from repro.net.asyncio_transport import Envelope
from repro.net.codec import (
    CODECS,
    decode_packed,
    encode_packed,
    get_codec,
    packed_roundtrip,
)
from repro.net.message import decode_message, encode_message
from tests.net.test_wire_coverage import BLOOM_PROJ, PROJ, SAMPLES, TID


@pytest.mark.parametrize("msg", SAMPLES, ids=lambda m: type(m).__name__)
def test_every_protocol_message_roundtrips_packed(msg):
    decoded = packed_roundtrip(msg)
    assert decoded == msg
    assert type(decoded) is type(msg)


def test_bloom_digest_still_queries_after_packed_roundtrip():
    decoded = packed_roundtrip(BLOOM_PROJ)
    assert decoded.readset.contains_any(["1/x"])
    assert not decoded.readset.contains_any(["1/definitely-not-there"])


def test_envelope_roundtrips_with_nested_payload():
    envelope = Envelope(src="s1", payload=PROJ)
    assert packed_roundtrip(envelope) == envelope


def test_packed_frames_are_smaller_than_json():
    for msg in SAMPLES:
        packed = len(encode_packed(msg))
        json_size = len(encode_message(msg))
        assert packed < json_size, (
            f"{type(msg).__name__}: packed {packed} >= json {json_size}"
        )


def test_scalar_edge_values_roundtrip():
    from repro.core.messages import ReadResponse

    for value in (None, True, False, 0, -1, 2**62, -(2**62), 2**80, 0.5, -1e300,
                  "", "κλειδί", b"\x00\xff", [], {}, [1, [2, {"k": (3,)}]]):
        msg = ReadResponse(
            tid=TID, op_id=0, key="k", value=value, snapshot=0,
            item_version=0, partition="p0",
        )
        assert packed_roundtrip(msg) == msg


def test_trailing_bytes_rejected():
    data = encode_packed(PROJ) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode_packed(data)


def test_truncated_frame_rejected():
    data = encode_packed(PROJ)
    with pytest.raises(CodecError):
        decode_packed(data[: len(data) // 2])


def test_unknown_type_tag_rejected():
    with pytest.raises(CodecError):
        decode_packed(b"\xfe")


def test_get_codec_returns_matching_pairs():
    for name in ("json", "packed"):
        encode, decode = get_codec(name)
        assert decode(encode(PROJ)) == PROJ
    assert get_codec("json") == CODECS["json"]
    assert get_codec("json")[0] is encode_message
    assert get_codec("json")[1] is decode_message


def test_get_codec_unknown_name_raises():
    with pytest.raises(CodecError, match="msgpack"):
        get_codec("msgpack")


def test_sim_network_roundtrips_through_packed_codec():
    from repro.runtime.sim import SimWorld

    world = SimWorld(codec_roundtrip=True, codec="packed")
    received = []
    world.network.register("a", lambda src, msg: None)
    world.network.register("b", lambda src, msg: received.append(msg))
    world.network.send("a", "b", PROJ)
    world.run_for(1.0)
    assert received == [PROJ]
    assert world.network.bytes_sent == len(encode_packed(PROJ))
