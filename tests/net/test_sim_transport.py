"""Unit tests for the simulated network."""

from dataclasses import dataclass

import pytest

from repro.errors import UnknownNodeError
from repro.net.message import Message, message
from repro.net.sim_transport import SimNetwork
from repro.sim.kernel import Kernel
from repro.sim.latency import ConstantLatency
from repro.sim.rng import RngRegistry


@message
@dataclass(frozen=True)
class _Hello(Message):
    text: str = "hi"


def make_net(loss=0.0, roundtrip=False, latency=0.01):
    kernel = Kernel()
    net = SimNetwork(
        kernel,
        ConstantLatency(latency),
        RngRegistry(1),
        codec_roundtrip=roundtrip,
        loss_probability=loss,
    )
    return kernel, net


class TestDelivery:
    def test_message_arrives_after_latency(self):
        kernel, net = make_net()
        inbox = []
        net.register("b", lambda src, msg: inbox.append((kernel.now, src, msg)))
        net.register("a", lambda src, msg: None)
        net.send("a", "b", _Hello())
        kernel.run()
        assert inbox == [(0.01, "a", _Hello())]

    def test_send_to_unregistered_node_raises(self):
        _, net = make_net()
        with pytest.raises(UnknownNodeError):
            net.send("a", "ghost", _Hello())

    def test_fifo_not_guaranteed_but_order_by_latency(self):
        kernel, net = make_net()
        inbox = []
        net.register("b", lambda src, msg: inbox.append(msg.text))
        net.send("a", "b", _Hello("first"))
        net.send("a", "b", _Hello("second"))
        kernel.run()
        assert inbox == ["first", "second"]

    def test_stats_counters(self):
        kernel, net = make_net()
        net.register("b", lambda src, msg: None)
        net.send("a", "b", _Hello())
        kernel.run()
        assert net.messages_sent == 1
        assert net.messages_delivered == 1
        assert net.messages_dropped == 0


class TestCodecRoundtrip:
    def test_message_is_reencoded(self):
        kernel, net = make_net(roundtrip=True)
        inbox = []
        net.register("b", lambda src, msg: inbox.append(msg))
        original = _Hello("payload")
        net.send("a", "b", original)
        kernel.run()
        assert inbox[0] == original
        assert inbox[0] is not original  # a fresh decoded object
        assert net.bytes_sent > 0


class TestFailures:
    def test_crashed_sender_drops(self):
        kernel, net = make_net()
        inbox = []
        net.register("b", lambda src, msg: inbox.append(msg))
        net.crash("a")
        net.send("a", "b", _Hello())
        kernel.run()
        assert inbox == []
        assert net.messages_dropped == 1

    def test_crashed_receiver_drops(self):
        kernel, net = make_net()
        net.register("b", lambda src, msg: pytest.fail("delivered to crashed node"))
        net.crash("b")
        net.send("a", "b", _Hello())
        kernel.run()

    def test_crash_during_flight_drops_in_flight_messages(self):
        kernel, net = make_net()
        inbox = []
        net.register("b", lambda src, msg: inbox.append(msg))
        net.send("a", "b", _Hello())
        kernel.schedule(0.005, net.crash, "b")  # crash before delivery at 0.01
        kernel.run()
        assert inbox == []

    def test_cut_link_drops_both_directions_until_healed(self):
        kernel, net = make_net()
        inbox = []
        net.register("a", lambda src, msg: inbox.append(("a", msg.text)))
        net.register("b", lambda src, msg: inbox.append(("b", msg.text)))
        net.cut_link("a", "b")
        net.send("a", "b", _Hello("lost1"))
        net.send("b", "a", _Hello("lost2"))
        kernel.run()
        assert inbox == []
        net.heal_link("a", "b")
        net.send("a", "b", _Hello("through"))
        kernel.run()
        assert inbox == [("b", "through")]

    def test_probabilistic_loss(self):
        kernel, net = make_net(loss=0.5)
        inbox = []
        net.register("b", lambda src, msg: inbox.append(msg))
        for _ in range(200):
            net.send("a", "b", _Hello())
        kernel.run()
        assert 40 < len(inbox) < 160  # ~100 expected

    def test_invalid_loss_probability(self):
        with pytest.raises(ValueError):
            make_net(loss=1.5)

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            kernel, net = make_net(loss=0.3)
            inbox = []
            net.register("b", lambda src, msg: inbox.append(msg))
            for _ in range(50):
                net.send("a", "b", _Hello())
            kernel.run()
            results.append(len(inbox))
        assert results[0] == results[1]
