"""A2 — reorder-threshold sweep (the §IV-E sizing warning).

Shape criteria: local p99 improves as R grows and then saturates, while
an oversized R (far beyond the traffic delivered during a vote round
trip) inflates global latency.
"""

from repro.experiments import ablation_threshold


def test_a2_threshold(table_runner):
    table = table_runner(ablation_threshold.run)
    rows = {r["R"]: r for r in table.rows}
    base = rows[0]
    well_sized = min(rows[8]["local_p99_ms"], rows[32]["local_p99_ms"])
    huge = rows[max(rows)]
    assert well_sized < base["local_p99_ms"], "reordering should help locals"
    assert huge["global_avg_ms"] > base["global_avg_ms"] * 1.2, (
        "an oversized threshold should visibly delay globals "
        f"({base['global_avg_ms']} -> {huge['global_avg_ms']} ms)"
    )
    assert huge["global_avg_ms"] > rows[8]["global_avg_ms"], (
        "the paper's sizing warning: bigger is not better"
    )
