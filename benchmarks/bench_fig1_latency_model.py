"""T1 — regenerate the Figure 1 latency-model table (analytic vs measured)."""

from repro.experiments import fig1_model


def test_t1_latency_model(table_runner):
    table = table_runner(fig1_model.run)
    by_deployment = {row["deployment"]: row for row in table.rows}
    # Exact agreements the simulator must reproduce (small tolerance for
    # the loopback hand-off delay).
    wan1 = by_deployment["wan1"]
    assert abs(wan1["measured_local_ms"] - wan1["local_commit_ms"]) < 0.5
    assert abs(wan1["measured_global_ms"] - wan1["global_commit_ms"]) < 0.5
    wan2 = by_deployment["wan2"]
    assert abs(wan2["measured_local_ms"] - wan2["local_commit_ms"]) < 0.5
