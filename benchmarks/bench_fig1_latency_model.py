"""T1 — regenerate the Figure 1 latency-model table (analytic vs measured)."""

from repro.experiments import fig1_model


def test_t1_latency_model(table_runner):
    table = table_runner(fig1_model.run)
    by_case = {
        (row["deployment"], row["termination"]): row for row in table.rows
    }
    # Exact agreements the simulator must reproduce (small tolerance for
    # the loopback hand-off delay), per termination mode.
    for mode in ("optimistic", "ledger"):
        wan1 = by_case[("wan1", mode)]
        assert abs(wan1["measured_local_ms"] - wan1["local_commit_ms"]) < 0.5
        assert abs(wan1["measured_global_ms"] - wan1["global_commit_ms"]) < 0.5
        wan2 = by_case[("wan2", mode)]
        assert abs(wan2["measured_local_ms"] - wan2["local_commit_ms"]) < 0.5
    # Figure 1's exact cases carry exact attributions.
    wan1_opt = by_case[("wan1", "optimistic")]
    assert wan1_opt["local_attribution"].startswith("4δ = ")
    assert wan1_opt["global_attribution"].startswith("4δ+2Δ = ")
