"""Autoscale scenario smoke: downsized E3 drifting-hotspot run.

Runs the autonomous-elasticity scenario (``repro.experiments.autoscale``,
E3) at reduced length — 8 closed-loop clients driving a zipf hotspot
that drifts across the keyspace every 12 s while the
``repro.autoscale`` controller splits and merges partitions on its own —
and asserts the PR's acceptance gates:

* the controller acts autonomously: at least one split *and* one merge
  fire without any scheduled fault;
* the committed history (including merge-install synthetic commits)
  passes the replica-agreement and serializability checkers;
* no availability hole: every 1-second goodput bucket stays above zero,
  and the worst bucket stays above a quarter of the mean.

    PYTHONPATH=src python benchmarks/bench_e3_autoscale.py

writes ``benchmarks/BENCH_autoscale.json`` (committed as the CI
baseline).

    PYTHONPATH=src python benchmarks/bench_e3_autoscale.py --check PATH

re-runs the scenario and fails (exit 1) if any gate above fails or if
mean goodput drops below half the committed baseline — the simulation
is deterministic, so half is a deliberately loose floor that only trips
on real behavioral regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import autoscale  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_autoscale.json"

#: Long enough for the first split (~t=2.5s), the hotspot's first jump
#: (t=12s), the second split, and the cooled child's merge (~t=20.5s).
RUN_FOR = 24.0


def run_once() -> dict:
    result = autoscale.e3_once(clients=8, run_for=RUN_FOR)
    events = "; ".join(
        f"t={t}s {action} {partition}" + (f"->{into}" if into else "")
        for t, action, partition, into in result["events"]
    )
    print(
        f"splits={result['splits_triggered']}  "
        f"merges={result['merges_triggered']}  "
        f"goodput mean={result['mean_goodput_tps']} tps "
        f"min={result['min_goodput_tps']} tps  "
        f"serializable={result['serializable']}  "
        f"agreement={result['replica_agreement']}"
    )
    print(f"decisions: {events or 'none'}")
    return result


def gate_failures(result: dict, baseline: dict | None = None) -> list[str]:
    failures = []
    if result["splits_triggered"] < 1:
        failures.append("controller never split a partition")
    if result["merges_triggered"] < 1:
        failures.append("controller never merged a partition")
    if not result["serializable"]:
        failures.append("history is not serializable")
    if not result["replica_agreement"]:
        failures.append("replica histories diverged")
    if result["min_goodput_tps"] <= 0:
        failures.append("a 1s goodput bucket hit zero: reconfiguration availability hole")
    if result["min_goodput_tps"] < 0.25 * result["mean_goodput_tps"]:
        failures.append(
            f"worst goodput bucket {result['min_goodput_tps']} tps is below a "
            f"quarter of the {result['mean_goodput_tps']} tps mean"
        )
    if baseline is not None:
        floor = baseline["mean_goodput_tps"] / 2.0
        if result["mean_goodput_tps"] < floor:
            failures.append(
                f"mean goodput {result['mean_goodput_tps']} tps regressed >2x "
                f"below the committed baseline {baseline['mean_goodput_tps']} tps"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare a re-run against a committed baseline JSON",
    )
    parser.add_argument(
        "--out",
        default=str(BASELINE_PATH),
        help="baseline output path (default: benchmarks/BENCH_autoscale.json)",
    )
    args = parser.parse_args()

    result = run_once()
    baseline = None
    if args.check:
        baseline = json.loads(Path(args.check).read_text())["result"]
    failures = gate_failures(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    if args.check:
        print("scenario smoke OK: split+merge fired, checkers green, goodput held")
        return 0

    payload = {
        "benchmark": "E3 drifting-hotspot autoscale (downsized)",
        "control": {
            "interval": autoscale.CONTROL.interval,
            "capacity": autoscale.CONTROL.capacity,
            "high_water": autoscale.CONTROL.high_water,
            "low_water": autoscale.CONTROL.low_water,
            "sustain": autoscale.CONTROL.sustain,
            "cooldown": autoscale.CONTROL.cooldown,
            "min_partitions": autoscale.CONTROL.min_partitions,
            "max_partitions": autoscale.CONTROL.max_partitions,
        },
        "result": result,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
