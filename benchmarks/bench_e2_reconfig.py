"""E2 — live partition split under load (extension experiment).

Shape criteria: the cluster keeps committing through the split window
(no availability hole), and once the hot range is served by two Paxos
groups, steady-state throughput beats the saturated single-partition
level by a clear margin.
"""

from repro.experiments import reconfig


def test_e2_reconfig(table_runner):
    table = table_runner(reconfig.run)
    rows = {r["phase"]: r["tps"] for r in table.rows}
    assert rows["split window (1s)"] > 0, (
        "the migration must not stall the whole cluster"
    )
    # Half the hot range's transactions become global across p0/p2 after
    # the split (two-partition certification + vote exchange), so the
    # gain is sub-linear — but it must still be a clear improvement.
    assert rows["after split"] > rows["before split"] * 1.1, (
        "splitting the hot partition must raise its throughput ceiling"
    )
