"""Telemetry overhead microbenchmark (wall clock).

Measures the real-time certified throughput of one ``SdurServer``
driven directly through ``on_adeliver`` with the S1 workload shape
(local-only transactions, 3 reads + 2 writes over a 5000-key
partition), comparing telemetry **disabled** — the default; the
registry is built but every observe site is guarded off — against
telemetry **enabled with a sampler ticking at 1 Hz** (commit-latency
and batch-size histograms recording, all bound counters walked once a
second).  ``tests/telemetry/test_overhead.py`` proves the disabled
path allocates nothing; this benchmark prices the enabled one:

    PYTHONPATH=src python benchmarks/bench_telemetry.py

writes ``benchmarks/BENCH_telemetry.json`` (committed as the CI
baseline) and asserts the PR's acceptance ceiling: enabled-at-1Hz
costs at most 5% of the disabled path's certified throughput.

    PYTHONPATH=src python benchmarks/bench_telemetry.py --check PATH

re-runs a reduced measurement and fails (exit 1) on a >3x slowdown
against either cell of the committed baseline, or on the overhead
exceeding 15% — loose enough for noisy shared CI runners, tight
enough to catch an unguarded observe site landing on the hot path.

The delivery stream is pre-generated exactly as bench_batch.py does
(replayed through a throwaway server so snapshots lag realistically);
both cells ingest the identical stream.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import SdurConfig, ServiceCosts  # noqa: E402
from repro.core.directory import ClusterDirectory  # noqa: E402
from repro.core.partitioning import PartitionMap  # noqa: E402
from repro.core.server import SdurServer  # noqa: E402
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection  # noqa: E402
from repro.telemetry import TelemetryConfig, TelemetrySampler  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_telemetry.json"

#: S1 workload shape, matching bench_batch.py.
READS_PER_TXN = 3
WRITES_PER_TXN = 2
ITEMS_PER_PARTITION = 5000
SNAPSHOT_LAG = 64

SAMPLE_INTERVAL = 1.0  # Hz target for the enabled cell
#: Deliveries between wall-clock checks in the enabled loop — the
#: sampler has to tick on real time here (there is no sim clock), and
#: checking perf_counter() every delivery would itself be overhead.
CLOCK_STRIDE = 4096


class _StubRuntime:
    """Immediate-execution runtime, as in bench_batch.py: inline
    ``execute``, dead timers, frozen ``now`` — the bench measures the
    Python path, not simulated time."""

    def __init__(self) -> None:
        self.node_id = "s0"
        self.sent = 0

    def now(self) -> float:
        return 0.0

    def send(self, dst: str, msg) -> None:
        self.sent += 1

    def set_timer(self, delay: float, callback):
        return _DEAD_TIMER

    def listen(self, handler) -> None:
        return None

    def rng(self, name: str) -> random.Random:
        return random.Random(name)

    def execute(self, cost: float, fn) -> None:
        fn()

    def latency_estimate(self, dst: str) -> float:
        return 0.0

    def trace(self, category: str, **detail) -> None:
        return None


class _DeadTimerHandle:
    def cancel(self) -> None:
        return None


_DEAD_TIMER = _DeadTimerHandle()


class _DropFabric:
    def abcast(self, group: str, value) -> None:
        return None


def _build_server() -> SdurServer:
    config = SdurConfig(
        costs=ServiceCosts(read=5e-5, certify=2e-4, apply=3e-4),
        gossip_interval=None,
        vote_timeout=None,
    )
    return SdurServer(
        runtime=_StubRuntime(),
        partition="p0",
        directory=ClusterDirectory(partitions={"p0": ["s0"]}, preferred={"p0": "s0"}),
        partition_map=PartitionMap.by_index(1),
        fabric=_DropFabric(),
        config=config,
    )


def _generate_stream(count: int, seed: int) -> list[TxnProjection]:
    generator = _build_server()
    rng = random.Random(seed)
    stream: list[TxnProjection] = []
    for seq in range(count):
        reads = [
            f"0/k{rng.randrange(ITEMS_PER_PARTITION)}" for _ in range(READS_PER_TXN)
        ]
        writes = {
            f"0/k{rng.randrange(ITEMS_PER_PARTITION)}": seq
            for _ in range(WRITES_PER_TXN)
        }
        proj = TxnProjection(
            tid=TxnId("bench", seq),
            partition="p0",
            readset=ReadsetDigest.exact(reads),
            writeset=writes,
            snapshot=max(0, generator.sc - rng.randrange(SNAPSHOT_LAG)),
            partitions=("p0",),
            coordinator="s0",
            client="bench",
        )
        generator.on_adeliver(seq, proj)
        stream.append(proj)
    return stream


def _cell(server: SdurServer, stream: list[TxnProjection], elapsed: float, **extra):
    committed = server.stats.committed_local
    aborted = server.stats.aborted_certification + server.stats.aborted_stale_snapshot
    assert committed + aborted == len(stream), "bench stream left deliveries behind"
    return {
        "deliveries": len(stream),
        "committed": committed,
        "aborted": aborted,
        "certified_tps": round(committed / elapsed, 1) if elapsed else 0.0,
        "delivered_tps": round(len(stream) / elapsed, 1) if elapsed else 0.0,
        **extra,
    }


def _measure_disabled(stream: list[TxnProjection]) -> dict:
    """The default path: no sampler, observe sites guarded off.  The
    loop is identical to bench_batch's sequential cell — no wall-clock
    checks — so the cell prices exactly what users of the default
    config pay."""
    server = _build_server()
    assert server.telemetry_enabled is False
    gc.collect()
    gc.freeze()
    started = perf_counter()
    for instance, proj in enumerate(stream):
        server.on_adeliver(instance, proj)
    elapsed = perf_counter() - started
    gc.unfreeze()
    return _cell(server, stream, elapsed, cell="disabled", samples=0)


def _measure_enabled(stream: list[TxnProjection]) -> dict:
    """Telemetry on, sampler ticking at 1 Hz of *wall* time: histograms
    record on every commit, and every second the sampler walks all
    bound instruments into its ring buffers (the dominant per-sample
    cost).  The wall clock is polled every CLOCK_STRIDE deliveries."""
    server = _build_server()
    server.telemetry_enabled = True
    sampler = TelemetrySampler(
        TelemetryConfig(interval=SAMPLE_INTERVAL), clock=perf_counter
    )
    sampler.attach("s0", server.registry)
    gc.collect()
    gc.freeze()
    started = perf_counter()
    next_sample = started + SAMPLE_INTERVAL
    for instance, proj in enumerate(stream):
        server.on_adeliver(instance, proj)
        if instance % CLOCK_STRIDE == 0 and perf_counter() >= next_sample:
            sampler.sample()
            next_sample += SAMPLE_INTERVAL
    elapsed = perf_counter() - started
    gc.unfreeze()
    sampler.sample()  # final snapshot, outside the timed window anyway
    assert server._hist_commit_latency.count == server.stats.committed_local
    return _cell(
        server, stream, elapsed, cell="enabled_1hz", samples=sampler.samples_taken
    )


def run_suite(count: int, seed: int = 0x7E1E, repeats: int = 7) -> list[dict]:
    """Best-of-``repeats`` per cell, cells *interleaved* (d,e,d,e,…):
    wall-clock runs on shared CI runners are noisy and the noise drifts,
    so measuring all-of-one-then-all-of-the-other folds the drift into
    the ratio under test.  Interleaving exposes both cells to the same
    conditions; the best run is the least-perturbed estimate of each
    code path's cost."""
    stream = _generate_stream(count, seed)
    results = []
    for measure in (_measure_disabled, _measure_enabled):
        results.append([measure(stream)])  # warm-up round, also counted
    for _ in range(repeats - 1):
        for index, measure in enumerate((_measure_disabled, _measure_enabled)):
            results[index].append(measure(stream))
    best = []
    for runs in results:
        cell = max(runs, key=lambda c: c["certified_tps"])
        best.append(cell)
        print(
            f"{cell['cell']:<12} certified {cell['certified_tps']:>12.1f} tps  "
            f"committed={cell['committed']}  aborted={cell['aborted']}  "
            f"samples={cell['samples']}"
        )
    return best


def _overhead(results: list[dict]) -> float:
    by_cell = {cell["cell"]: cell for cell in results}
    base = by_cell["disabled"]["certified_tps"]
    if not base:
        return float("inf")
    return 1.0 - by_cell["enabled_1hz"]["certified_tps"] / base


def check_against(baseline_path: Path, results: list[dict]) -> int:
    baseline = json.loads(baseline_path.read_text())
    by_cell = {cell["cell"]: cell for cell in results}
    failures = []
    for cell in baseline["results"]:
        measured = by_cell.get(cell["cell"])
        if measured is None:
            failures.append(f"missing cell {cell['cell']}")
            continue
        floor = cell["certified_tps"] / 3.0
        if measured["certified_tps"] < floor:
            failures.append(
                f"{cell['cell']}: {measured['certified_tps']} tps is >3x below "
                f"the committed baseline {cell['certified_tps']}"
            )
    # The acceptance ceiling is 5% (enforced on baseline generation);
    # the smoke re-run uses a shorter stream on a noisy shared runner,
    # so it gates at 15% — catching an unguarded observe site or an
    # accidentally-hot sampler without flaking on scheduler jitter.
    overhead = _overhead(results)
    if overhead > 0.15:
        failures.append(f"enabled-at-1Hz overhead is {overhead:.1%} (> 15%)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"perf smoke OK: no cell regressed >3x; "
            f"telemetry overhead {overhead:.1%}"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare a reduced re-run against a committed baseline JSON",
    )
    parser.add_argument(
        "--out",
        default=str(BASELINE_PATH),
        help="baseline output path (default: benchmarks/BENCH_telemetry.json)",
    )
    parser.add_argument("--count", type=int, default=60_000)
    args = parser.parse_args()
    if args.check:
        results = run_suite(count=max(5_000, args.count // 4))
        return check_against(Path(args.check), results)
    results = run_suite(count=args.count)
    overhead = _overhead(results)
    print(f"enabled-at-1Hz overhead: {overhead:.1%}")
    if overhead > 0.05:
        print("FAIL: acceptance ceiling is 5% overhead at 1Hz", file=sys.stderr)
        return 1
    payload = {
        "benchmark": "telemetry enabled at 1Hz vs disabled",
        "workload": {
            "shape": "S1 (local-only)",
            "reads_per_txn": READS_PER_TXN,
            "writes_per_txn": WRITES_PER_TXN,
            "items_per_partition": ITEMS_PER_PARTITION,
            "snapshot_lag": SNAPSHOT_LAG,
        },
        "sample_interval": SAMPLE_INTERVAL,
        "overhead": round(overhead, 4),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
