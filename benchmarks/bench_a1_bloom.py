"""A1 — bloom-digest certification ablation (paper §V).

Shape criteria: exact readsets never abort in the contention-free
workload; bloom digests abort at a rate bounded by (a small multiple of)
their configured false-positive target.
"""

from repro.experiments import ablation_bloom


def test_a1_bloom(table_runner):
    table = table_runner(ablation_bloom.run)
    e2e = {r["readset_digest"]: r for r in table.rows if "aborted" in r}
    assert e2e["exact"]["aborted"] == 0, "exact digests must not false-positive"
    assert e2e["bloom fp=0.001"]["abort_rate_pct"] < 2.0
    scaling = [r for r in table.rows if r["readset_keys"] == 32]
    exact32 = next(r for r in scaling if r["readset_digest"] == "exact")
    bloom32 = next(r for r in scaling if r["readset_digest"] == "bloom fp=0.001")
    assert bloom32["wire_bytes"] < exact32["wire_bytes"], (
        "digests must beat exact keys on the wire for larger readsets"
    )
    assert bloom32["measured_fp"] < 0.01
