"""A3 — Paxos learning-strategy ablation (relay vs broadcast).

Shape criteria: acceptor-broadcast learning cuts WAN 2 global latency by
roughly 2Δ relative to coordinator relay, at a higher message count per
commit; the paper's 3δ+3Δ figure lies between the two.
"""

from repro.experiments import ablation_learning


def test_a3_learning(table_runner):
    table = table_runner(ablation_learning.run)
    rows = {r["learning"]: r for r in table.rows}
    relay = rows["coordinator relay"]
    broadcast = rows["acceptor broadcast"]
    assert broadcast["global_avg_ms"] < relay["global_avg_ms"], (
        "broadcast learning must be faster for globals"
    )
    assert broadcast["msgs_per_commit"] > relay["msgs_per_commit"], (
        "broadcast learning must cost more messages"
    )
