"""S1 — regenerate the DSN 2012 scalability result (reconstructed).

Shape criteria: SDUR's local-only throughput grows near-linearly with
the number of partitions (≥ 1.6× per doubling), while classic DUR over
the same total server count stays flat (within 30 % of its 1-group
value).
"""

from repro.experiments import scalability


def test_s1_scalability(table_runner):
    table = table_runner(scalability.run_s1)
    rows = {r["partitions"]: r for r in table.rows}
    partitions = sorted(rows)
    for smaller, larger in zip(partitions, partitions[1:]):
        ratio = rows[larger]["sdur_tput"] / rows[smaller]["sdur_tput"]
        assert ratio > 1.6, f"SDUR scaling {smaller}->{larger} partitions: {ratio:.2f}x"
    classic = [rows[p]["classic_dur_tput"] for p in partitions]
    assert max(classic) < min(classic) * 1.3, f"classic DUR should stay flat: {classic}"
