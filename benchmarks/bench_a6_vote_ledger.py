"""A6 — vote-ledger termination ablation (docs/PROTOCOL.md §14).

Shape criteria: the ledger prices its soundness visibly — global commits
slow by at least one local broadcast, every global certification orders
a vote record (optimistic orders none), and per-partition log traffic is
strictly higher — while throughput stays in the same regime.
"""

from repro.experiments import ablation_vote_ledger


def test_a6_vote_ledger(table_runner):
    table = table_runner(ablation_vote_ledger.run)
    by_deployment = {}
    for row in table.rows:
        by_deployment.setdefault(row["deployment"], {})[row["termination"]] = row
    assert len(by_deployment) >= 2, "must cover at least two WAN deployments"
    for deployment, modes in by_deployment.items():
        optimistic, ledger = modes["optimistic"], modes["ledger"]
        assert optimistic["tput_total"] > 0 and ledger["tput_total"] > 0, deployment
        # The ledger sequences votes; the optimistic baseline never does.
        assert optimistic["votes_ordered"] == 0, deployment
        assert ledger["votes_ordered"] > 0, deployment
        # Re-sequencing votes costs log traffic.
        assert ledger["log_proposals"] > optimistic["log_proposals"], deployment
        # And latency: at least one extra local broadcast on the global
        # path (the analytical delta is two; load noise keeps this loose).
        assert ledger["global_avg_ms"] > optimistic["global_avg_ms"], deployment
        assert ledger["ledger_aborts"] <= ledger["aborts"], deployment
