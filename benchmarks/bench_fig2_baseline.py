"""F2 — regenerate Figure 2: baseline SDUR in WAN 1 / WAN 2.

Shape criteria checked: adding globals inflates the 99th-percentile
latency of local transactions dramatically in WAN 1 (paper: up to 10×)
and mildly in WAN 2 (paper: ≤ 1.34×); CDFs are captured for 0 % and 10 %.
"""

from repro.experiments import fig2_baseline


def test_f2_baseline(table_runner):
    table = table_runner(fig2_baseline.run)
    rows = {(r["deployment"], r["globals_pct"]): r for r in table.rows}
    wan1_blowup = rows[("wan1", 1.0)]["local_p99_ms"] / rows[("wan1", 0.0)]["local_p99_ms"]
    wan2_blowup = rows[("wan2", 1.0)]["local_p99_ms"] / rows[("wan2", 0.0)]["local_p99_ms"]
    assert wan1_blowup > 2.5, f"WAN1 convoy effect too weak: {wan1_blowup:.1f}x"
    assert wan2_blowup < wan1_blowup, "WAN2 must be less sensitive than WAN1"
    assert table.cdfs, "latency CDFs must be captured"
