"""F5 — regenerate Figure 5: reordering in WAN 2.

Shape criteria: locals improve (paper: e.g. 229 → 161 ms at 10 %
globals) while the gain is smaller than WAN 1's — WAN 2's locals are
already Δ-bound — and globals pay at most a small cost.
"""

from repro.experiments import fig5_reorder_wan2


def test_f5_reordering_wan2(table_runner):
    table = table_runner(fig5_reorder_wan2.run)
    for fraction in (10.0,):
        rows = [r for r in table.rows if r["globals_pct"] == fraction]
        base = next(r for r in rows if r["R"] == "baseline")
        best = min(r["local_p99_ms"] for r in rows if r["R"] != "baseline")
        assert best < base["local_p99_ms"], "reordering should help WAN2 locals"
