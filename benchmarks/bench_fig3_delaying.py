"""F3 — regenerate Figure 3: transaction delaying in WAN 1.

Shape criteria: delaying helps locals at 1 % globals and shows no
significant gain at 10 %/50 % (paper §VI-C).
"""

from repro.experiments import fig3_delaying


def test_f3_delaying(table_runner):
    table = table_runner(fig3_delaying.run)
    rows = {(r["globals_pct"], r["delay_ms"]): r for r in table.rows}
    base = rows[(1.0, "baseline")]["local_avg_ms"]
    best = min(
        rows[(1.0, d)]["local_avg_ms"] for d in ("20", "40", "60")
    )
    assert best <= base * 1.05, "delaying should not hurt locals at 1% globals"
