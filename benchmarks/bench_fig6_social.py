"""F6 — regenerate Figure 6: the social network application.

Shape criteria: with reordering enabled, post and local-follow p99
improve substantially in WAN 1 (paper: 70 %/71 %) while global follows
stay roughly flat; timelines (global read-only) never abort.
"""

from repro.experiments import fig6_social


def test_f6_social(table_runner):
    table = table_runner(fig6_social.run)
    wan1 = {
        (r["mode"].startswith("reorder"), r["operation"]): r
        for r in table.rows
        if r["deployment"] == "wan1"
    }
    for operation in ("post", "follow"):
        base = wan1[(False, operation)]["p99_ms"]
        reordered = wan1[(True, operation)]["p99_ms"]
        assert reordered < base * 0.75, (
            f"wan1 {operation}: p99 {base} -> {reordered} (expected >25% gain)"
        )
    timeline_rows = [r for r in table.rows if r["operation"] == "timeline"]
    assert all(r["aborted"] == 0 for r in timeline_rows), "read-only must not abort"
