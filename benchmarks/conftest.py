"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper by running
the corresponding :mod:`repro.experiments` module.  The pytest-benchmark
timing wraps the *whole experiment* (rounds=1: an experiment is a
simulation run, not a microbenchmark), and the paper-style rows land in
``extra_info`` and on stdout.

Set ``REPRO_BENCH_FULL=1`` for paper-scale parameters; the default quick
mode keeps every benchmark in the tens of seconds.
"""

import os
from pathlib import Path

import pytest

#: Rendered tables are persisted here (pytest captures stdout of passing
#: tests, so printing alone would lose them).
RESULTS_DIR = Path(__file__).parent / "results"


def run_table(benchmark, run_fn):
    """Run one experiment under the benchmark fixture; print and persist
    its paper-style table."""
    quick = os.environ.get("REPRO_BENCH_FULL", "") == ""
    table = benchmark.pedantic(lambda: run_fn(quick=quick), rounds=1, iterations=1)
    benchmark.extra_info.update(table.extra_info())
    print()
    table.print()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{table.experiment_id}.txt").write_text(table.render() + "\n")
    return table


@pytest.fixture
def table_runner(benchmark):
    return lambda run_fn: run_table(benchmark, run_fn)
