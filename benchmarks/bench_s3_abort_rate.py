"""S3 — regenerate the contention/abort-rate sweep (DSN 2012, reconstructed).

Shape criteria: abort rate grows with zipf skew (optimistic concurrency
control pays for hot keys at certification).
"""

from repro.experiments import aborts


def test_s3_abort_rate(table_runner):
    table = table_runner(aborts.run)
    local_rows = [r for r in table.rows if r["globals_pct"] == 0]
    uniform = next(r for r in local_rows if r["key_skew"] == "uniform")
    hottest = next(r for r in local_rows if r["key_skew"] == "zipf 1.2")
    assert hottest["abort_rate_pct"] > uniform["abort_rate_pct"], (
        f"skew must raise aborts: uniform {uniform['abort_rate_pct']}% "
        f"vs zipf1.2 {hottest['abort_rate_pct']}%"
    )
