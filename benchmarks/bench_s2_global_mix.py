"""S2 — regenerate the global-mix throughput decay (DSN 2012, reconstructed).

Shape criteria: aggregate throughput decreases monotonically-ish with
the share of global transactions, dropping by ≥ 15 % at a 50 % mix.
"""

from repro.experiments import scalability


def test_s2_global_mix(table_runner):
    table = table_runner(scalability.run_s2)
    rows = sorted(table.rows, key=lambda r: r["globals_pct"])
    assert rows[0]["globals_pct"] == 0.0
    assert rows[-1]["relative"] < 0.85, (
        f"50% globals should cost >15% throughput, got {rows[-1]['relative']}"
    )
    assert rows[-1]["tput"] < rows[0]["tput"]
