"""Certification microbenchmark: key-indexed vs window-scan (wall clock).

Measures the real-time cost of one *certification step* — the committed
window check, the pending-list dependency check, and (on commit) the
window append with index maintenance — across history-window sizes,
readset transports, and pending depths, for both strategies of
``SdurConfig.certifier``.  The simulated-cluster ablation (A7) proves
the strategies decide identically; this benchmark prices them:

    PYTHONPATH=src python benchmarks/bench_certification.py

writes ``benchmarks/BENCH_cert.json`` (committed as the CI baseline) and
asserts the PR's acceptance floor: the index is ≥5× the scan's
throughput at history_window=10_000 with exact readsets, and not slower
at history_window=100.

    PYTHONPATH=src python benchmarks/bench_certification.py --check PATH

re-runs a reduced measurement and fails (exit 1) on a >3× slowdown
against any cell of the committed baseline — a smoke test against
accidental complexity regressions, loose enough for noisy CI runners.

Snapshots lag uniformly over the window's span, so the scan traverses
half the window on average — the regime the paper's "last K bloom
filters" (§V) operate in when transactions straddle WAN round trips.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.certifier import CertificationWindow, CommittedRecord  # noqa: E402
from repro.core.certindex import make_certifier  # noqa: E402
from repro.core.config import CertifierMode  # noqa: E402
from repro.core.pending import PendingList, PendingTxn  # noqa: E402
from repro.core.transaction import ReadsetDigest, TxnId, TxnProjection  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_cert.json"

WINDOW_SIZES = (100, 1_000, 10_000)
READSET_MODES = ("exact", "bloom")
PENDING_DEPTHS = (0, 32)
MODES = (CertifierMode.SCAN, CertifierMode.INDEX)

READS_PER_TXN = 3
WRITES_PER_TXN = 2
GLOBAL_FRACTION = 0.2


def _digest(keys, bloom: bool) -> ReadsetDigest:
    return ReadsetDigest.bloomed(keys) if bloom else ReadsetDigest.exact(keys)


def _build_state(window_size: int, bloom: bool, pending_depth: int):
    """A full window, a populated pending list, and the key universe."""
    keyspace = 4 * window_size
    rng = random.Random(0xC0FFEE)
    window = CertificationWindow(window_size)
    for version in range(1, window_size + 1):
        reads = [f"k{rng.randrange(keyspace)}" for _ in range(READS_PER_TXN)]
        writes = [f"k{rng.randrange(keyspace)}" for _ in range(WRITES_PER_TXN)]
        window.add(
            CommittedRecord(
                tid=TxnId("h", version),
                version=version,
                readset=_digest(reads, bloom),
                ws_keys=frozenset(writes),
                is_global=rng.random() < GLOBAL_FRACTION,
            )
        )
    pending = PendingList()
    for seq in range(pending_depth):
        reads = [f"k{rng.randrange(keyspace)}" for _ in range(READS_PER_TXN)]
        writes = {f"k{rng.randrange(keyspace)}": 1 for _ in range(WRITES_PER_TXN)}
        proj = TxnProjection(
            tid=TxnId("pend", seq),
            partition="p0",
            readset=_digest(reads, bloom),
            writeset=writes,
            snapshot=window_size,
            partitions=("p0", "p1"),
            coordinator="s",
            client="c",
        )
        pending.append(PendingTxn(proj=proj, rt=10**9, delivered_at=0.0))
    return window, pending, keyspace


def _measure(
    mode: CertifierMode,
    window_size: int,
    bloom: bool,
    pending_depth: int,
    time_budget: float,
    min_ops: int,
) -> dict:
    window, pending, keyspace = _build_state(window_size, bloom, pending_depth)
    certifier = make_certifier(mode, window, pending)
    rng = random.Random(0xBEEF)
    version = window_size
    latencies: list[float] = []
    started = perf_counter()
    while len(latencies) < min_ops or perf_counter() - started < time_budget:
        reads = [f"k{rng.randrange(keyspace)}" for _ in range(READS_PER_TXN)]
        writes = {f"k{rng.randrange(keyspace)}": 1 for _ in range(WRITES_PER_TXN)}
        is_global = rng.random() < GLOBAL_FRACTION
        snapshot = max(window.floor, version - rng.randrange(window_size + 1))
        txn = TxnProjection(
            tid=TxnId("q", len(latencies)),
            partition="p0",
            readset=_digest(reads, bloom),
            writeset=writes,
            snapshot=snapshot,
            partitions=("p0", "p1") if is_global else ("p0",),
            coordinator="s",
            client="c",
        )
        t0 = perf_counter()
        verdict = certifier.certify(txn)
        if verdict:
            certifier.outcome_conflicts(txn)
            version += 1
            window.add(
                CommittedRecord(
                    tid=txn.tid,
                    version=version,
                    readset=txn.readset,
                    ws_keys=frozenset(writes),
                    is_global=is_global,
                )
            )
        latencies.append(perf_counter() - t0)
    elapsed = sum(latencies)
    latencies.sort()
    ops = len(latencies)
    return {
        "history_window": window_size,
        "readsets": "bloom" if bloom else "exact",
        "pending_depth": pending_depth,
        "mode": mode.value,
        "ops": ops,
        "ops_per_sec": round(ops / elapsed, 1) if elapsed else 0.0,
        "p50_us": round(latencies[ops // 2] * 1e6, 2),
        "p99_us": round(latencies[min(ops - 1, (ops * 99) // 100)] * 1e6, 2),
    }


def run_suite(time_budget: float, min_ops: int) -> list[dict]:
    results = []
    for window_size in WINDOW_SIZES:
        for readsets in READSET_MODES:
            for pending_depth in PENDING_DEPTHS:
                for mode in MODES:
                    cell = _measure(
                        mode,
                        window_size,
                        readsets == "bloom",
                        pending_depth,
                        time_budget,
                        min_ops,
                    )
                    results.append(cell)
                    print(
                        f"window={window_size:>6} {readsets:<5} "
                        f"pending={pending_depth:<3} {mode.value:<5} "
                        f"{cell['ops_per_sec']:>12.1f} ops/s  "
                        f"p50={cell['p50_us']:>9.2f}us  "
                        f"p99={cell['p99_us']:>9.2f}us"
                    )
    return results


def _cell_key(cell: dict) -> tuple:
    return (
        cell["history_window"],
        cell["readsets"],
        cell["pending_depth"],
        cell["mode"],
    )


def _speedup(results: list[dict], window_size: int, readsets: str, depth: int) -> float:
    by_key = {_cell_key(c): c for c in results}
    scan = by_key[(window_size, readsets, depth, "scan")]["ops_per_sec"]
    index = by_key[(window_size, readsets, depth, "index")]["ops_per_sec"]
    return index / scan if scan else float("inf")


def check_against(baseline_path: Path, results: list[dict]) -> int:
    baseline = json.loads(baseline_path.read_text())
    by_key = {_cell_key(c): c for c in results}
    failures = []
    for cell in baseline["results"]:
        measured = by_key.get(_cell_key(cell))
        if measured is None:
            failures.append(f"missing cell {_cell_key(cell)}")
            continue
        floor = cell["ops_per_sec"] / 3.0
        if measured["ops_per_sec"] < floor:
            failures.append(
                f"{_cell_key(cell)}: {measured['ops_per_sec']} ops/s is >3x "
                f"below the committed baseline {cell['ops_per_sec']}"
            )
    speedup = _speedup(results, 10_000, "exact", 0)
    if speedup < 5.0:
        failures.append(
            f"index/scan speedup at window=10000 exact is {speedup:.1f}x (< 5x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("perf smoke OK: no cell regressed >3x; 10k-exact speedup "
              f"{speedup:.1f}x")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare a reduced re-run against a committed baseline JSON",
    )
    parser.add_argument(
        "--out",
        default=str(BASELINE_PATH),
        help="baseline output path (default: benchmarks/BENCH_cert.json)",
    )
    args = parser.parse_args()
    if args.check:
        results = run_suite(time_budget=0.15, min_ops=10)
        return check_against(Path(args.check), results)
    results = run_suite(time_budget=0.5, min_ops=30)
    speedup_10k = _speedup(results, 10_000, "exact", 0)
    speedup_100 = _speedup(results, 100, "exact", 0)
    print(f"speedup at window=10000 exact: {speedup_10k:.1f}x")
    print(f"speedup at window=100   exact: {speedup_100:.1f}x")
    if speedup_10k < 5.0:
        print("FAIL: acceptance floor is 5x at window=10000 exact", file=sys.stderr)
        return 1
    if speedup_100 < 0.9:
        print("FAIL: index regressed at window=100 exact", file=sys.stderr)
        return 1
    payload = {
        "benchmark": "certification step: key-indexed vs window scan",
        "workload": {
            "reads_per_txn": READS_PER_TXN,
            "writes_per_txn": WRITES_PER_TXN,
            "global_fraction": GLOBAL_FRACTION,
            "snapshot_lag": "uniform over the window span",
        },
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
