"""F4 — regenerate Figure 4: reordering in WAN 1.

Shape criteria: the largest threshold improves locals' p99 by ≥ 40 %
(paper: 48–69 %) at every workload mix, with globals' mean within ~2× of
baseline.
"""

from repro.experiments import fig4_reorder_wan1


def test_f4_reordering_wan1(table_runner):
    table = table_runner(fig4_reorder_wan1.run)
    for fraction in (1.0, 10.0):
        rows = [r for r in table.rows if r["globals_pct"] == fraction]
        base = next(r for r in rows if r["R"] == "baseline")
        best_gain = max(r.get("local_p99_gain_pct", 0) for r in rows)
        assert best_gain > 40, (
            f"reordering gain at {fraction}% globals only {best_gain}% "
            f"(baseline p99 {base['local_p99_ms']} ms)"
        )
