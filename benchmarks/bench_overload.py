"""Overload scenario smoke: downsized O4 with admission control on.

Runs the sustained-overload scenario (``repro.experiments.overload``,
O4) at reduced measurement length — 4 open-loop clients offering 5x one
partition's capacity against the §16 admission controller — and asserts
the PR's acceptance gates:

* the server-side backlog stays bounded: ``queue_depth_max`` never
  exceeds twice the configured ``max_queue_depth`` (the slack covers
  read work, which the default policy does not shed);
* the committed history passes the replica-agreement and
  serializability checkers (shedding may cost throughput, never
  correctness);
* goodput under overload stays a usable fraction of capacity.

    PYTHONPATH=src python benchmarks/bench_overload.py

writes ``benchmarks/BENCH_overload.json`` (committed as the CI
baseline).

    PYTHONPATH=src python benchmarks/bench_overload.py --check PATH

re-runs the scenario and fails (exit 1) if any gate above fails or if
goodput drops below half the committed baseline — the simulation is
deterministic, so half is a deliberately loose floor that only trips on
real behavioral regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import overload  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_overload.json"


def run_once() -> dict:
    result = overload.o4_once(admission_on=True, quick=True)
    print(
        f"offered={result['offered_tps']} tps  "
        f"goodput={result['goodput_tps']} tps  "
        f"p50={result['p50_ms']}ms p99={result['p99_ms']}ms  "
        f"shed={result['shed_total']}  "
        f"queue_max={result['queue_depth_max']} "
        f"stall_max={result['stall_depth_max']}"
    )
    print(result["check_note"])
    return result


def gate_failures(result: dict, baseline: dict | None = None) -> list[str]:
    failures = []
    bound = 2 * overload.ADMISSION.max_queue_depth
    if result["queue_depth_max"] > bound:
        failures.append(
            f"queue_depth_max {result['queue_depth_max']} exceeds the "
            f"admission bound {bound} (2 x max_queue_depth)"
        )
    note = result["check_note"]
    if "agreement OK" not in note or "serializable OK" not in note:
        failures.append(f"checkers failed: {note}")
    if result["goodput_tps"] < 0.3 * overload.CAPACITY:
        failures.append(
            f"goodput {result['goodput_tps']} tps is below 30% of the "
            f"{overload.CAPACITY:.0f} tps capacity"
        )
    if baseline is not None:
        floor = baseline["goodput_tps"] / 2.0
        if result["goodput_tps"] < floor:
            failures.append(
                f"goodput {result['goodput_tps']} tps regressed >2x below "
                f"the committed baseline {baseline['goodput_tps']} tps"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare a re-run against a committed baseline JSON",
    )
    parser.add_argument(
        "--out",
        default=str(BASELINE_PATH),
        help="baseline output path (default: benchmarks/BENCH_overload.json)",
    )
    args = parser.parse_args()

    result = run_once()
    baseline = None
    if args.check:
        baseline = json.loads(Path(args.check).read_text())["result"]
    failures = gate_failures(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    if args.check:
        print("scenario smoke OK: queue bounded, checkers green, goodput held")
        return 0

    payload = {
        "benchmark": "O4 sustained 5x overload, admission on (quick)",
        "capacity_tps": round(overload.CAPACITY),
        "admission": {
            "rate": overload.ADMISSION.rate,
            "burst": overload.ADMISSION.burst,
            "max_inflight": overload.ADMISSION.max_inflight,
            "max_queue_depth": overload.ADMISSION.max_queue_depth,
        },
        "result": result,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
