"""A4 — Paxos value-batching ablation.

Shape criteria: messages per commit drop with the batch window; mean
latency grows by no more than ~one window.
"""

from repro.experiments import ablation_batching


def test_a4_batching(table_runner):
    table = table_runner(ablation_batching.run)
    rows = {r["batch_window"]: r for r in table.rows}
    assert rows["5 ms"]["msgs_per_commit"] < rows["off"]["msgs_per_commit"] * 0.7, (
        "batching must cut consensus messages per commit"
    )
    assert rows["1 ms"]["avg_ms"] < rows["off"]["avg_ms"] + 2.0, (
        "1 ms window must cost at most ~the window in latency"
    )
