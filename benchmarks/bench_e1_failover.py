"""E1 — availability under leader failover (extension experiment).

Shape criteria: throughput collapses in the failover window (leader
suspicion + Phase 1) and recovers to at least half the pre-crash level
once the new leader is steady.
"""

from repro.experiments import ext_failover


def test_e1_failover(table_runner):
    table = table_runner(ext_failover.run)
    rows = {r["phase"]: r["tps"] for r in table.rows}
    assert rows["failover window (2s)"] < rows["before crash"] * 0.5, (
        "a leader crash must visibly dent throughput"
    )
    assert rows["after recovery"] > rows["failover window (2s)"] * 2, (
        "throughput must recover after the new leader settles"
    )
