"""A5 — SDUR termination vs genuine atomic multicast (P-Store style).

Shape criteria: in WAN 2 the multicast primitive is slower than SDUR's
broadcast-plus-votes termination (the paper's related-work claim); in
WAN 1 they are comparable.
"""

from repro.experiments import ablation_multicast


def test_a5_multicast(table_runner):
    table = table_runner(ablation_multicast.run)
    rows = {r["deployment"]: r for r in table.rows}
    assert rows["wan2"]["amcast_deliver_ms"] > rows["wan2"]["sdur_commit_ms"] * 1.2, (
        "multicast termination should be clearly slower in WAN 2"
    )
    assert rows["wan1"]["amcast_deliver_ms"] >= rows["wan1"]["sdur_commit_ms"] * 0.9, (
        "multicast should not beat SDUR in WAN 1"
    )
